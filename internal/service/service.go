// Package service is the in-process core of optimization-as-a-service: a
// job manager that accepts system specs (inline, or by registry name),
// deduplicates identical work through a content-addressed result cache
// keyed by (spec.Digest, options fingerprint), schedules jobs across a
// bounded worker pool sharing one plan-cached core.Engine — so repeated
// requests against the same system reuse its frozen topology snapshot,
// frequency responses and transfer profiles — supports cooperative
// cancellation threaded through wlopt.Options.Context, and streams
// per-step progress events to any number of watchers per job.
//
// The HTTP daemon in cmd/wloptd is a thin shell over this package; the
// package itself is embeddable (the benchmarks drive it in-process).
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sfg"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/systems"
	"repro/internal/trace"
	"repro/internal/wlopt"
)

// Config sizes the manager.
type Config struct {
	// NPSD is the evaluation engine's bin count; <= 0 selects 256.
	NPSD int
	// Workers bounds concurrently running jobs; <= 0 selects GOMAXPROCS.
	Workers int
	// InnerWorkers is the per-job oracle pool width; <= 0 selects 1
	// (job-level parallelism already saturates the machine).
	InnerWorkers int
	// ResultCacheSize bounds the content-addressed result cache;
	// <= 0 selects 128.
	ResultCacheSize int
	// GraphCacheSize bounds the per-digest graph (and engine plan) cache;
	// <= 0 selects 16.
	GraphCacheSize int
	// QueueSize bounds jobs waiting for a worker; <= 0 selects 256.
	// Submit fails with ErrQueueFull beyond it — the service sheds load
	// instead of buffering without bound.
	QueueSize int
	// JobHistory bounds retained terminal jobs; <= 0 selects 1024.
	JobHistory int
	// StepThrottle inserts a pause after every search step. Zero for
	// production; tests use it to make in-flight cancellation windows
	// deterministic, demos to make progress streams watchable.
	StepThrottle time.Duration
	// Store, when non-nil, persists warm state across restarts: plan
	// snapshots keyed by (digest, NPSD) and results keyed by
	// (digest, options fingerprint) survive the process. Reads fall back
	// transparently on miss or corruption; writes are write-through after
	// each completed job. It also carries the accepted-job journal: every
	// accepted submission is journaled before Submit returns and retired
	// at its terminal transition, and New recovers surviving entries —
	// a SIGKILL'd daemon finishes its backlog after restart (see
	// journal.go). nil keeps the manager fully in-memory.
	Store *store.Store
	// NodeID, when non-empty, prefixes job IDs ("<node>-j000001") so IDs
	// minted by different backends never collide behind a router that
	// fans requests across a fleet. Empty keeps the bare "j000001" form.
	NodeID string
	// OnJobDone, when non-nil, is called once per job as it reaches a
	// terminal state, with the job's final snapshot. It runs outside the
	// manager and job locks on whichever goroutine drove the transition —
	// the API layer uses it to feed latency histograms; keep it fast.
	OnJobDone func(*JobInfo)
	// Tracer, when non-nil, records a span tree per job: queue wait,
	// coalesce, store probe, plan build/restore, search and persist
	// phases, joined to the caller's HTTP span when SubmitCtx receives a
	// context carrying one. nil disables tracing entirely — the untraced
	// path performs no allocation and no extra locking.
	Tracer *trace.Recorder
	// PlanObserver, when non-nil, is installed as the engine's plan
	// observer (core.Engine.SetPlanObserver): one callback per plan
	// build/restore with its duration, next to the PlanBuilds /
	// PlanRestores counters. The daemon feeds a latency histogram and a
	// structured log line from it.
	PlanObserver func(core.PlanEvent)
	// Log, when non-nil, receives structured warnings for load-shedding
	// events that would otherwise be invisible outside counters — today
	// that is the promoted-follower cohort shed when a cancelled leader's
	// retry finds the queue full. nil disables the logging.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.NPSD <= 0 {
		c.NPSD = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.InnerWorkers <= 0 {
		c.InnerWorkers = 1
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 128
	}
	if c.GraphCacheSize <= 0 {
		c.GraphCacheSize = 16
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 1024
	}
	return c
}

// Request is one job submission: a system (inline spec, or the name of a
// systems.Registry entry) plus optimizer options. When Options is entirely
// unset, the options embedded in the spec apply.
type Request struct {
	System  string       `json:"system,omitempty"`
	Spec    *spec.Spec   `json:"spec,omitempty"`
	Options spec.Options `json:"options"`
}

// Sentinel errors, distinguished so the HTTP layer can map them to status
// codes.
var (
	// ErrBadRequest wraps submission validation failures (HTTP 400).
	ErrBadRequest = errors.New("bad request")
	// ErrBadSpec wraps spec parse/validation failures specifically; it
	// matches ErrBadRequest too, so status mapping is unchanged, but the
	// API layer can report the machine-readable bad_spec code.
	ErrBadSpec error = badSpecError{}
	// ErrNotFound marks unknown job IDs and system names (HTTP 404).
	ErrNotFound = errors.New("not found")
	// ErrQueueFull means the pending queue is at capacity (HTTP 429,
	// with Retry-After — the service sheds load instead of buffering).
	ErrQueueFull = errors.New("queue full")
	// ErrDeadlineExceeded means the job's deadline elapsed before a worker
	// could start it (HTTP 504): the answer could only ever arrive after
	// the caller stopped caring, so the queue sheds it instead of running
	// a search nobody will read. Jobs whose deadline fires *mid-search*
	// are not errors — they finish Done with Result.Degraded set.
	ErrDeadlineExceeded = errors.New("deadline exceeded")
	// ErrClosed means the manager is shutting down (HTTP 503).
	ErrClosed = errors.New("service closed")
)

// badSpecError is ErrBadSpec's concrete type: a distinct sentinel that
// also answers errors.Is(err, ErrBadRequest).
type badSpecError struct{}

func (badSpecError) Error() string        { return "bad spec" }
func (badSpecError) Is(target error) bool { return target == ErrBadRequest }

// Stats is a point-in-time census, exposed on /healthz.
type Stats struct {
	Submitted int64 `json:"submitted"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
	Cancelled int   `json:"cancelled"`
	// QueueLen and QueueCap expose the pending-queue occupancy and bound —
	// the admission-control signal a router needs to decide whether this
	// backend can absorb another job before it answers 429.
	QueueLen int `json:"queue_len"`
	QueueCap int `json:"queue_cap"`
	// Workers is the configured concurrent-job bound.
	Workers int `json:"workers"`
	// CacheHits counts submissions answered from the result cache — the
	// in-memory LRU or the persistent store.
	CacheHits int64 `json:"cache_hits"`
	// Coalesced counts submissions attached as followers to an identical
	// in-flight job (single-flight) instead of being queued redundantly.
	Coalesced int64 `json:"coalesced"`
	// Watchers is the live event-subscriber count across retained jobs;
	// abandoned watch streams would show up here as a monotonic climb.
	Watchers int `json:"watchers"`
	// ResultCacheLen is the current result-cache population.
	ResultCacheLen int `json:"result_cache_len"`
	// GraphCacheLen is the current graph-cache population.
	GraphCacheLen int `json:"graph_cache_len"`
	// PlanBuilds counts engine plans built from scratch (graph propagation
	// + FFT response sampling); PlanRestores counts plans installed from
	// persisted snapshots instead. A restarted daemon serving warm digests
	// should grow PlanRestores while PlanBuilds stays at zero.
	PlanBuilds   int64 `json:"plan_builds"`
	PlanRestores int64 `json:"plan_restores"`
	// JobsRecovered counts journaled jobs re-admitted at boot — nonzero
	// means the previous process died abruptly with accepted work
	// pending, and this one picked it up.
	JobsRecovered int64 `json:"jobs_recovered"`
	// DeadlineExpired counts jobs shed because their deadline elapsed
	// while they were still waiting (queued, or riding a leader) — before
	// any search ran on their behalf.
	DeadlineExpired int64 `json:"deadline_expired"`
	// Degraded counts searches truncated by a deadline mid-run and
	// answered with their best-so-far assignment (Result.Degraded).
	Degraded int64 `json:"degraded"`
	// PromotionsShed counts coalesced followers dropped with ErrQueueFull
	// when their cancelled leader's promotion found no queue room.
	PromotionsShed int64 `json:"promotions_shed"`
	// RetryAfterS is the backend's own estimate, from the observed queue
	// drain rate, of how many seconds until the pending queue has room —
	// the value a 429 should carry as Retry-After, exported here so a
	// router can reuse it without re-deriving the rate.
	RetryAfterS int `json:"retry_after_s"`
	// Store is the persistent store census; nil when running in-memory.
	Store *store.Stats `json:"store,omitempty"`
}

// SystemInfo describes one registry system on GET /v1/systems.
type SystemInfo struct {
	Name string `json:"name"`
	// Digest is the system's content hash at the default 16-bit export
	// width (width-dependent noise models hash differently at other
	// widths; see systems.SpecFor).
	Digest string `json:"digest"`
	Nodes  int    `json:"nodes"`
	// Sources is the number of optimizable noise sources.
	Sources int `json:"sources"`
}

// cachedResult is one result-cache entry.
type cachedResult struct {
	res    *wlopt.Result
	budget float64
}

// graphEntry serializes use of one cached graph: the optimizer mutates
// source widths in place, so two jobs on the same digest take turns while
// jobs on different digests run concurrently.
type graphEntry struct {
	mu sync.Mutex
	g  *sfg.Graph
	// persisted marks the digest's plan snapshot as already on disk
	// (written by us, or restored from a previous process); guarded by mu.
	persisted bool
}

// Manager is the service core. Create with New, dispose with Close.
type Manager struct {
	cfg Config
	eng *core.Engine

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *job
	wg         sync.WaitGroup

	// halted marks a crash-stop (Halt): store and journal writes are
	// suppressed so the on-disk state looks SIGKILL'd, not drained.
	halted atomic.Bool

	// Shedding counters live outside m.mu: they are bumped from timer
	// goroutines and settle paths that already hold j.mu, and the lock
	// order there must stay m.mu → j.mu.
	deadlineExpired atomic.Int64
	degraded        atomic.Int64
	promotionsShed  atomic.Int64

	// drainMu guards the queue drain-rate window: the timestamps of the
	// last drainWindow jobs a worker popped off the queue, from which
	// RetryAfter estimates time-to-room for 429 responses.
	drainMu    sync.Mutex
	drainTimes [drainWindow]time.Time
	drainN     int // population, up to drainWindow
	drainIdx   int // next write position (ring)

	mu        sync.Mutex
	closed    bool
	jobs      map[string]*job
	order     []string // insertion order, for history eviction
	seq       int64
	submitted int64
	recovered int64 // journaled jobs re-admitted on boot
	cacheHits int64
	coalesced int64
	results   *lruCache       // key -> *cachedResult
	graphs    *lruCache       // digest -> *graphEntry
	inflight  map[string]*job // key -> leader job (queued or running)
	regSpecs  map[string]regEntry

	sysOnce sync.Once
	sysList []SystemInfo
	sysErr  error
}

// New starts a manager with cfg.Workers worker goroutines.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		eng:        core.NewEngine(cfg.NPSD, cfg.InnerWorkers),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueSize),
		jobs:       make(map[string]*job),
		results:    newLRU(cfg.ResultCacheSize),
		graphs:     newLRU(cfg.GraphCacheSize),
		inflight:   make(map[string]*job),
		regSpecs:   make(map[string]regEntry),
	}
	// Keep one engine plan per cached graph: the plan cache is the point
	// of sharing the engine across requests.
	m.eng.SetPlanCacheCap(cfg.GraphCacheSize)
	if cfg.PlanObserver != nil {
		m.eng.SetPlanObserver(cfg.PlanObserver)
	}
	m.graphs.onEvict = func(_ string, val any) {
		m.eng.Invalidate(val.(*graphEntry).g)
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	// Recover journaled jobs synchronously, after the workers exist to
	// drain them but before the manager is handed to any server: by the
	// time the process accepts traffic, every recovered ID resolves.
	m.recoverJobs()
	return m
}

// Close stops accepting submissions, cancels every queued and running job,
// and waits for the workers to drain.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.baseCancel()
	close(m.queue)
	m.wg.Wait()
}

// Submit validates, resolves and enqueues one job. A submission whose
// (digest, options) key is in the result cache — the in-memory LRU, or the
// persistent store when configured — returns an already-done job without
// touching the queue; one whose key is already in flight coalesces onto
// the running job (single-flight) instead of duplicating the search.
func (m *Manager) Submit(req Request) (*JobInfo, error) {
	return m.SubmitCtx(context.Background(), req)
}

// SubmitCtx is Submit with a caller context, used only for tracing: when
// ctx carries an active trace span (the API layer's per-request root),
// the job's spans join that trace instead of starting a fresh one. The
// context does not govern the job's lifetime — cancellation still goes
// through Cancel.
func (m *Manager) SubmitCtx(ctx context.Context, req Request) (*JobInfo, error) {
	sysName, sp, opts, digest, err := m.resolve(req)
	if err != nil {
		return nil, err
	}
	key := digest + "|" + opts.Fingerprint()
	// The deadline anchors at acceptance: DeadlineMS is "total latency
	// from submission", and this is where submission becomes real.
	var deadline time.Time
	if opts.DeadlineMS > 0 {
		deadline = time.Now().Add(time.Duration(opts.DeadlineMS) * time.Millisecond)
	}

	// Mint the job's spans before taking the manager lock: trace
	// bookkeeping is never under m.mu. With no Tracer all three stay
	// nil and every span operation below is a free no-op.
	var tr *trace.Trace
	var jobSpan, qSpan *trace.Span
	if m.cfg.Tracer != nil {
		parent := trace.SpanFrom(ctx)
		if parent != nil {
			tr = parent.Trace()
		} else {
			tr = m.cfg.Tracer.StartTrace("")
		}
		jobSpan = tr.StartSpan("job", parent)
		jobSpan.SetAttr("digest", shortDigest(digest))
		jobSpan.SetAttr("strategy", opts.Strategy)
		qSpan = tr.StartSpan("queue.wait", jobSpan)
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		abortSpans(jobSpan, qSpan, "closed")
		return nil, ErrClosed
	}
	m.seq++
	m.submitted++
	id := fmt.Sprintf("j%06d", m.seq)
	if m.cfg.NodeID != "" {
		id = m.cfg.NodeID + "-" + id
	}
	jobSpan.SetAttr("job_id", id)
	j := &job{
		id:        id,
		seq:       m.seq,
		sysName:   sysName,
		sp:        sp,
		opts:      opts,
		digest:    digest,
		key:       key,
		deadline:  deadline,
		state:     JobQueued,
		submitted: time.Now(),
		subs:      make(map[int]chan Event),
		muted:     &m.halted,
		traceID:   tr.ID(),
		span:      jobSpan,
		qspan:     qSpan,
	}
	// Every terminal transition routes through jobDone: it retires the
	// job's journal entry, then forwards to Config.OnJobDone.
	j.onDone = func(info *JobInfo) { m.jobDone(j, info) }
	j.ctx, j.cancel = context.WithCancel(m.baseCtx)
	// Publish the initial state before the job is visible to workers or
	// watchers, so the event history always starts with "queued" and a
	// worker's "running" transition can never be overwritten.
	j.mu.Lock()
	j.publishLocked(Event{Type: "state", State: JobQueued})
	j.mu.Unlock()
	if hit, ok := m.results.get(key); ok {
		return m.serveHitLocked(j, hit.(*cachedResult)), nil
	}
	if leader, ok := m.inflight[key]; ok {
		info := m.joinLocked(j, leader)
		// Followers are accepted work too: journal them, so a crash while
		// their leader runs doesn't silently drop them.
		m.journalAccept(j)
		// A follower waits like a queued job does, so its deadline evicts
		// it the same way: riding a leader that won't finish in time is
		// still waiting too long.
		m.armDeadline(j)
		return info, nil
	}
	if m.cfg.Store != nil {
		// Probe the persistent store with the lock dropped — it's file IO —
		// then re-check the in-memory tiers, which may have been filled (or
		// claimed by a new leader) while we were on disk.
		m.mu.Unlock()
		psp := tr.StartSpan("store.probe", jobSpan)
		cr := m.storeGetResult(key)
		psp.SetAttr("hit", strconv.FormatBool(cr != nil))
		psp.End()
		m.mu.Lock()
		if m.closed {
			m.submitted--
			m.mu.Unlock()
			j.cancel()
			abortSpans(jobSpan, qSpan, "closed")
			return nil, ErrClosed
		}
		if hit, ok := m.results.get(key); ok {
			return m.serveHitLocked(j, hit.(*cachedResult)), nil
		}
		if leader, ok := m.inflight[key]; ok {
			info := m.joinLocked(j, leader)
			m.journalAccept(j)
			m.armDeadline(j)
			return info, nil
		}
		if cr != nil {
			m.results.put(key, cr)
			return m.serveHitLocked(j, cr), nil
		}
	}
	select {
	case m.queue <- j:
	default:
		// Rejected: the ID is burned (never registered; gaps are fine) and
		// the submission doesn't count.
		m.submitted--
		m.mu.Unlock()
		j.cancel() // release the context registration
		abortSpans(jobSpan, qSpan, "queue_full")
		return nil, ErrQueueFull
	}
	m.inflight[key] = j
	m.registerLocked(j)
	m.mu.Unlock()
	// Journal after commit, before the caller gets its ack: a crash from
	// here on is recoverable, and a crash before here raced the ack the
	// client never received.
	m.journalAccept(j)
	m.armDeadline(j)
	return j.snapshot(), nil
}

// armDeadline schedules the job's eviction at its deadline. Only jobs
// still waiting when the timer fires are shed (expireJob checks); one
// that reached a worker first is instead truncated by the
// deadline-derived search context in run. The timer is released at the
// job's terminal transition (notifyDone).
func (m *Manager) armDeadline(j *job) {
	if j.deadline.IsZero() {
		return
	}
	t := time.AfterFunc(time.Until(j.deadline), func() { m.expireJob(j) })
	j.mu.Lock()
	if j.state.Terminal() {
		// Lost the race with an early terminal transition; don't leave a
		// timer ticking behind a finished job.
		j.mu.Unlock()
		t.Stop()
		return
	}
	j.dlTimer = t
	j.mu.Unlock()
}

// expireJob sheds a job whose deadline elapsed while it was still
// waiting — queued for a worker, or coalesced behind a leader. It fails
// fast with ErrDeadlineExceeded (journal retired through the normal
// terminal hook, job span aborted "deadline"); jobs already running or
// terminal are left alone.
func (m *Manager) expireJob(j *job) {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return
	}
	j.err = fmt.Errorf("%w after %s waiting", ErrDeadlineExceeded, time.Since(j.submitted).Round(time.Millisecond))
	j.span.SetAttr("abort", "deadline")
	became := j.setStateLocked(JobFailed)
	j.mu.Unlock()
	j.cancel()
	if became {
		m.deadlineExpired.Add(1)
		j.notifyDone()
	}
}

// serveHitLocked answers j straight from a cached result. Called with m.mu
// held; returns with it released.
func (m *Manager) serveHitLocked(j *job, cr *cachedResult) *JobInfo {
	m.cacheHits++
	j.cacheHit = true
	j.budget = cr.budget
	m.registerLocked(j)
	m.mu.Unlock()
	j.finish(cr.res, nil)
	return j.snapshot()
}

// joinLocked attaches j as a follower of the in-flight leader computing
// the same key; the leader's settle resolves it. Called with m.mu held;
// returns with it released.
func (m *Manager) joinLocked(j, leader *job) *JobInfo {
	m.coalesced++
	leader.followers = append(leader.followers, j)
	m.registerLocked(j)
	m.mu.Unlock()
	// Mark the single-flight join in the follower's trace: its queue.wait
	// span now measures time spent riding the leader.
	csp := j.span.Trace().StartSpan("coalesce", j.span)
	csp.SetAttr("leader", leader.id)
	csp.End()
	return j.snapshot()
}

// abortSpans closes a rejected submission's spans before the job ever
// becomes visible (queue full, manager closing). No-op when nil.
func abortSpans(jobSpan, qSpan *trace.Span, reason string) {
	qSpan.End()
	jobSpan.SetAttr("state", reason)
	jobSpan.End()
}

// shortDigest trims a content digest to a log/trace-friendly prefix.
func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}

// registerLocked adds the job to the index and evicts old terminal jobs
// beyond the history bound; m.mu must be held.
func (m *Manager) registerLocked(j *job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	for len(m.order) > m.cfg.JobHistory {
		victim, ok := m.jobs[m.order[0]]
		if ok {
			victim.mu.Lock()
			terminal := victim.state.Terminal()
			victim.mu.Unlock()
			if !terminal {
				break // never evict live jobs; the queue bounds them
			}
			delete(m.jobs, victim.id)
		}
		m.order = m.order[1:]
	}
}

// resolve turns a Request into (system name, spec, defaulted options,
// digest). Inline specs are validated once, by the Digest computation;
// registry systems reuse a memoized spec + digest, so warm submissions by
// name never rebuild a graph.
func (m *Manager) resolve(req Request) (string, *spec.Spec, spec.Options, string, error) {
	var zero spec.Options
	if (req.System == "") == (req.Spec == nil) {
		return "", nil, zero, "", fmt.Errorf("%w: exactly one of system and spec must be set", ErrBadRequest)
	}
	opts := req.Options
	if opts.IsZero() && req.Spec != nil && req.Spec.Options != nil {
		// IsZero ignores DeadlineMS, so a request carrying only a deadline
		// still defers to the spec's embedded options — but the deadline is
		// the caller's, and survives the substitution.
		dl := opts.DeadlineMS
		opts = *req.Spec.Options
		if dl > 0 {
			opts.DeadlineMS = dl
		}
	}
	opts = opts.WithDefaults()
	if err := opts.Validate(); err != nil {
		return "", nil, zero, "", fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if _, ok := wlopt.Lookup(opts.Strategy); !ok {
		return "", nil, zero, "", fmt.Errorf("%w: unknown strategy %q (registered: %v)", ErrBadRequest, opts.Strategy, wlopt.Strategies())
	}
	if req.Spec != nil {
		digest, err := req.Spec.Digest() // validates the spec as a side effect
		if err != nil {
			return "", nil, zero, "", fmt.Errorf("%w: %w", ErrBadSpec, err)
		}
		return req.Spec.Name, req.Spec, opts, digest, nil
	}
	en, err := m.registrySpec(req.System, opts.MaxFrac)
	if err != nil {
		return "", nil, zero, "", err
	}
	return req.System, en.sp, opts, en.digest, nil
}

// regEntry memoizes one registry system's exported spec and digest per
// export width.
type regEntry struct {
	sp     *spec.Spec
	digest string
}

// registrySpec exports (and memoizes) the spec of a registry system at the
// given width.
func (m *Manager) registrySpec(name string, maxFrac int) (regEntry, error) {
	key := fmt.Sprintf("%s@%d", name, maxFrac)
	m.mu.Lock()
	if en, ok := m.regSpecs[key]; ok {
		m.mu.Unlock()
		return en, nil
	}
	m.mu.Unlock()
	registry, err := systems.Registry()
	if err != nil {
		return regEntry{}, err
	}
	for _, sys := range registry {
		if sys.Name() == name {
			sp, err := systems.SpecFor(sys, maxFrac)
			if err != nil {
				return regEntry{}, err
			}
			digest, err := sp.Digest()
			if err != nil {
				return regEntry{}, err
			}
			en := regEntry{sp: sp, digest: digest}
			m.mu.Lock()
			m.regSpecs[key] = en
			m.mu.Unlock()
			return en, nil
		}
	}
	return regEntry{}, fmt.Errorf("%w: unknown system %q", ErrNotFound, name)
}

func (m *Manager) worker() {
	defer m.wg.Done()
	// Reading from the closed queue drains the buffered backlog first, so
	// shutdown marks leftover jobs cancelled (their context is already
	// dead) instead of abandoning them silently.
	for j := range m.queue {
		m.run(j)
	}
}

// run executes one job on the calling worker goroutine.
func (m *Manager) run(j *job) {
	// Every pop frees a queue slot, whether the job runs or is skipped:
	// both feed the drain-rate estimate behind RetryAfter.
	m.recordDrain()
	// Settle runs whatever happens to the leader — success, failure,
	// cancellation before begin — so coalesced followers are never
	// stranded.
	defer m.settle(j)
	// A job popped after its deadline is shed before any work happens —
	// this closes the race where the worker wins against the eviction
	// timer by a few microseconds.
	if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
		m.expireJob(j)
		return
	}
	if !j.begin() {
		return
	}
	// tr is nil with tracing off; every span below is then a no-op.
	tr := j.span.Trace()
	entry, err := m.graphFor(j)
	if err != nil {
		j.finish(nil, err)
		return
	}
	// One job per graph at a time: the optimizer mutates source widths in
	// place. Jobs on different digests proceed concurrently.
	entry.mu.Lock()
	defer entry.mu.Unlock()
	g := entry.g

	// Force the plan build here (instead of lazily inside the first
	// evaluation) so a cold build is timed and attributed to this job;
	// warm and restored plans report built=false and record nothing.
	planStart := time.Now()
	built, err := m.eng.EnsurePlan(g)
	if err != nil {
		j.finish(nil, err)
		return
	}
	if built {
		tr.StartSpanAt("plan.build", j.span, planStart).End()
	}

	budget := j.opts.Budget
	if j.opts.BudgetWidth > 0 {
		bsp := tr.StartSpan("budget.probe", j.span)
		probe, err := m.eng.EvaluateAssignment(g, core.UniformAssignment(g.NoiseSources(), j.opts.BudgetWidth))
		bsp.End()
		if err != nil {
			j.finish(nil, fmt.Errorf("budget probe at %d bits: %w", j.opts.BudgetWidth, err))
			return
		}
		budget = probe.Power
	}
	j.mu.Lock()
	j.budget = budget
	j.mu.Unlock()

	// A deadlined job searches under a context that expires at the
	// deadline: the anytime strategies then stop at their next greedy
	// step and hand back the best-so-far assignment, which becomes a
	// degraded answer below instead of a cancellation.
	searchCtx := j.ctx
	if !j.deadline.IsZero() {
		var cancelSearch context.CancelFunc
		searchCtx, cancelSearch = context.WithDeadline(j.ctx, j.deadline)
		defer cancelSearch()
	}
	res, err := wlopt.RunStrategy(g, j.opts.Strategy, wlopt.Options{
		Budget:       budget,
		MinFrac:      j.opts.MinFrac,
		MaxFrac:      j.opts.MaxFrac,
		CostPerBit:   j.opts.CostPerBit,
		Evaluator:    m.eng,
		Seed:         j.opts.Seed,
		AnnealRounds: j.opts.AnnealRounds,
		// With tracing on, carry the job span so RunStrategy opens its
		// "search" span under it; With returns searchCtx unchanged
		// otherwise.
		Context: trace.With(searchCtx, j.span),
		Progress: func(ev wlopt.ProgressEvent) {
			j.progress(ev)
			m.throttle(searchCtx)
		},
	})
	if err == nil && res != nil && res.Cancelled && j.ctx.Err() == nil && errors.Is(searchCtx.Err(), context.DeadlineExceeded) {
		// The deadline — not the caller — stopped the search: the
		// best-so-far assignment is a valid degraded answer, not a
		// cancellation. It is served but never cached (below), so the
		// key's canonical answer stays open for an undegraded run.
		res.Cancelled = false
		res.Degraded = true
		j.span.SetAttr("degraded", "true")
		m.degraded.Add(1)
	}
	if err == nil && res != nil && !res.Cancelled && !res.Degraded {
		m.mu.Lock()
		m.results.put(j.key, &cachedResult{res: res, budget: budget})
		m.mu.Unlock()
		// Write-through: the persistent tiers are repaired/filled on every
		// completed job. entry.mu is still held, so the persisted flag and
		// the engine plan for g are stable.
		psp := tr.StartSpan("persist", j.span)
		m.storePutResult(j.key, res, budget)
		m.persistPlan(j.digest, entry)
		psp.End()
	}
	j.finish(res, err)
}

// settle resolves a leader's followers once its run attempt is over. A
// successful leader's result answers every follower directly; a failed or
// cancelled leader promotes its first live follower to leader, which
// re-enters the queue carrying the rest — so a cancelled leader never
// silently takes its whole cohort down with it.
func (m *Manager) settle(j *job) {
	m.mu.Lock()
	if m.inflight[j.key] == j {
		delete(m.inflight, j.key)
	}
	followers := j.followers
	j.followers = nil
	if len(followers) == 0 {
		m.mu.Unlock()
		return
	}
	j.mu.Lock()
	res, err, budget := j.res, j.err, j.budget
	done := j.state == JobDone
	j.mu.Unlock()

	// A degraded result answers only its own caller: followers may have
	// longer (or no) deadlines, so they are promoted to run the search
	// properly instead of inheriting a truncated answer.
	if done && err == nil && res != nil && !res.Cancelled && !res.Degraded {
		cr := &cachedResult{res: res, budget: budget}
		m.mu.Unlock()
		for _, f := range followers {
			f.mu.Lock()
			terminal := f.state.Terminal()
			if !terminal {
				f.cacheHit = true
				f.budget = cr.budget
			}
			f.mu.Unlock()
			if !terminal {
				f.finish(cr.res, nil)
			}
		}
		return
	}

	// Leader didn't produce a servable result: promote the first follower
	// whose context is still live, hand it the remaining cohort, and
	// re-dispatch it.
	var promote *job
	var rest, dead, shed []*job
	for _, f := range followers {
		if f.ctx.Err() != nil {
			dead = append(dead, f)
		} else if promote == nil {
			promote = f
		} else {
			rest = append(rest, f)
		}
	}
	if promote != nil {
		if m.closed {
			dead = append(dead, promote)
			dead = append(dead, rest...)
			promote = nil
		} else {
			promote.followers = append(promote.followers, rest...)
			select {
			case m.queue <- promote:
				m.inflight[promote.key] = promote
			default:
				// No queue room for the retry: shed the cohort explicitly
				// rather than stranding it.
				shed = append(shed, promote)
				shed = append(shed, rest...)
				promote = nil
			}
		}
	}
	m.mu.Unlock()
	for _, f := range dead {
		f.cancelNow()
	}
	for _, f := range shed {
		m.promotionsShed.Add(1)
		if m.cfg.Log != nil {
			m.cfg.Log.Warn("shedding promoted follower: queue full at leader settle",
				"job_id", f.id, "trace_id", f.traceID, "leader", j.id,
				"digest", shortDigest(f.digest))
		}
		f.finish(nil, ErrQueueFull)
	}
}

// storeGetResult probes the persistent store for a result-cache entry.
// nil means miss (including corrupt entries, which the store has already
// disposed of).
func (m *Manager) storeGetResult(key string) *cachedResult {
	if m.cfg.Store == nil {
		return nil
	}
	var sr storedResult
	if !m.cfg.Store.Get(store.KindResult, key, &sr) || sr.Res == nil {
		return nil
	}
	return &cachedResult{res: sr.Res, budget: sr.Budget}
}

// storePutResult write-throughs one completed result. Persistence is best
// effort: a failed write leaves the in-memory cache authoritative.
func (m *Manager) storePutResult(key string, res *wlopt.Result, budget float64) {
	if m.cfg.Store == nil || m.halted.Load() {
		return
	}
	_ = m.cfg.Store.Put(store.KindResult, key, &storedResult{Res: res, Budget: budget})
}

// persistPlan snapshots the digest's warm engine plan to the store, once
// per graphEntry lifetime. The caller must hold entry.mu.
func (m *Manager) persistPlan(digest string, entry *graphEntry) {
	if m.cfg.Store == nil || entry.persisted || m.halted.Load() {
		return
	}
	snap, err := m.eng.SnapshotPlan(entry.g)
	if err != nil {
		if errors.Is(err, core.ErrPlanNotCached) {
			// Full-propagation plans have no width-independent warm state;
			// nothing will ever be snapshottable for this entry.
			entry.persisted = true
		}
		return
	}
	if m.cfg.Store.Put(store.KindPlan, store.PlanKey(digest, m.cfg.NPSD), snap) == nil {
		entry.persisted = true
	}
}

// storedResult is the persisted (gob) form of one result-cache entry.
type storedResult struct {
	Res    *wlopt.Result
	Budget float64
}

// throttle sleeps Config.StepThrottle, cut short by cancellation.
func (m *Manager) throttle(ctx context.Context) {
	if m.cfg.StepThrottle <= 0 {
		return
	}
	t := time.NewTimer(m.cfg.StepThrottle)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// graphFor returns the cached graph for the job's digest, building it on
// first use.
func (m *Manager) graphFor(j *job) (*graphEntry, error) {
	m.mu.Lock()
	if e, ok := m.graphs.get(j.digest); ok {
		m.mu.Unlock()
		return e.(*graphEntry), nil
	}
	m.mu.Unlock()
	// Build outside the manager lock: construction designs filters and
	// can take a while.
	tr := j.span.Trace()
	gsp := tr.StartSpan("graph.build", j.span)
	g, err := j.sp.Build()
	gsp.End()
	if err != nil {
		return nil, err
	}
	e := &graphEntry{g: g}
	if m.cfg.Store != nil {
		// Warm the engine from a persisted plan snapshot: a hit skips the
		// whole plan build (propagation + FFT response sampling). A
		// snapshot that fails shape validation is as good as corrupt —
		// drop it; the write-through after the first job rebuilds it.
		rsp := tr.StartSpan("plan.restore", j.span)
		restored := false
		key := store.PlanKey(j.digest, m.cfg.NPSD)
		var snap core.PlanSnapshot
		if m.cfg.Store.Get(store.KindPlan, key, &snap) {
			if err := m.eng.RestorePlan(g, &snap); err != nil {
				m.cfg.Store.Delete(store.KindPlan, key)
			} else {
				e.persisted = true
				restored = true
			}
		}
		rsp.SetAttr("restored", strconv.FormatBool(restored))
		rsp.End()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if prev, ok := m.graphs.get(j.digest); ok {
		return prev.(*graphEntry), nil // lost the build race; use theirs
	}
	m.graphs.put(j.digest, e)
	return e, nil
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (*JobInfo, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	return j.snapshot(), nil
}

// List snapshots every retained job in submission order.
func (m *Manager) List() []*JobInfo {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	out := make([]*JobInfo, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	return out
}

// Pagination bounds for ListPage. A router fanning N backends into one
// listing multiplies every page it requests by N, so the ceiling is firm.
const (
	// DefaultListLimit applies when ListQuery.Limit is unset.
	DefaultListLimit = 100
	// MaxListLimit clamps explicit limits.
	MaxListLimit = 1000
)

// ListQuery selects one page of the retained job history.
type ListQuery struct {
	// Limit bounds the page size; <= 0 selects DefaultListLimit, values
	// above MaxListLimit are clamped.
	Limit int
	// Cursor resumes after the job with this ID (as returned in
	// JobPage.NextCursor). Empty starts from the oldest retained job.
	Cursor string
	// State, when non-empty, keeps only jobs currently in that state.
	State JobState
}

// JobPage is one page of job snapshots in submission order.
type JobPage struct {
	Jobs []*JobInfo `json:"jobs"`
	// NextCursor resumes the listing after the last job of this page;
	// empty when the listing is exhausted.
	NextCursor string `json:"next_cursor,omitempty"`
	// Partial marks a page that could not consult every shard (a router
	// fanning in with one or more backends ejected). Such a page always
	// carries a NextCursor: retrying it after the pool heals recovers the
	// missing shard's jobs. Single-node listings never set it.
	Partial bool `json:"partial,omitempty"`
}

// ListPage returns jobs after the cursor in submission order, filtered by
// state, up to the limit. Cursors are job IDs; a cursor whose job has been
// evicted from the history still works, because IDs order by their minting
// sequence.
func (m *Manager) ListPage(q ListQuery) (*JobPage, error) {
	limit := q.Limit
	if limit <= 0 {
		limit = DefaultListLimit
	}
	if limit > MaxListLimit {
		limit = MaxListLimit
	}
	switch q.State {
	case "", JobQueued, JobRunning, JobDone, JobFailed, JobCancelled:
	default:
		return nil, fmt.Errorf("%w: unknown state %q", ErrBadRequest, q.State)
	}
	after := int64(0)
	if q.Cursor != "" {
		seq, err := seqOfID(q.Cursor)
		if err != nil {
			return nil, fmt.Errorf("%w: bad cursor %q", ErrBadRequest, q.Cursor)
		}
		after = seq
	}

	m.mu.Lock()
	jobs := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok && j.seq > after {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()

	page := &JobPage{Jobs: []*JobInfo{}}
	for _, j := range jobs {
		info := j.snapshot()
		if q.State != "" && info.State != q.State {
			continue
		}
		if len(page.Jobs) == limit {
			// One more match exists beyond the full page: resume after the
			// last included job.
			page.NextCursor = page.Jobs[limit-1].ID
			return page, nil
		}
		page.Jobs = append(page.Jobs, info)
	}
	return page, nil
}

// seqOfID recovers the minting sequence from a job ID ("j000042" or
// "<node>-j000042"): the digits after the final 'j'.
func seqOfID(id string) (int64, error) {
	i := strings.LastIndexByte(id, 'j')
	if i < 0 || i+1 == len(id) {
		return 0, fmt.Errorf("no sequence in %q", id)
	}
	return strconv.ParseInt(id[i+1:], 10, 64)
}

// Cancel requests cooperative cancellation: a queued job terminates
// immediately (the worker that eventually pops it skips it), a running one
// stops at its next greedy step with the best-so-far result. Cancelling a
// terminal job is a no-op.
func (m *Manager) Cancel(id string) (*JobInfo, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	j.cancelNow()
	return j.snapshot(), nil
}

// Watch subscribes to the job's event stream: the full history replays
// first, then live events; the channel closes after the terminal event.
// Call the returned func to unsubscribe early.
func (m *Manager) Watch(id string) (<-chan Event, func(), error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	ch, stop := j.subscribe()
	return ch, stop, nil
}

// Wait blocks until the job reaches a terminal state (or ctx expires) and
// returns its final snapshot. The snapshot is taken from the job itself,
// so the result survives even if newer submissions evict the job from the
// retained history while Wait is blocked.
func (m *Manager) Wait(ctx context.Context, id string) (*JobInfo, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	ch, stop := j.subscribe()
	defer stop()
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return j.snapshot(), nil
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// drainWindow sizes the drain-rate sample: enough pops to smooth over
// per-job variance, few enough that the estimate tracks load shifts.
const drainWindow = 32

// recordDrain notes that a worker popped one job off the pending queue,
// feeding the drain-rate window behind RetryAfter. Every pop counts —
// including jobs skipped because they were cancelled or expired while
// queued — because every pop frees a queue slot.
func (m *Manager) recordDrain() {
	m.drainMu.Lock()
	m.drainTimes[m.drainIdx] = time.Now()
	m.drainIdx = (m.drainIdx + 1) % drainWindow
	if m.drainN < drainWindow {
		m.drainN++
	}
	m.drainMu.Unlock()
}

// RetryAfter estimates, in whole seconds, how long until the pending
// queue has room, from the observed drain rate over the recent window:
// the Retry-After a 429 should carry instead of a constant. With no
// drain history (cold start, or a queue that fills before anything ever
// ran) it answers 1 — retry soon and let the next 429 carry a real
// estimate. Clamped to [1, 60].
func (m *Manager) RetryAfter() int {
	return m.retryAfterFor(len(m.queue))
}

func (m *Manager) retryAfterFor(queueLen int) int {
	m.drainMu.Lock()
	n := m.drainN
	var oldest, newest time.Time
	if n > 0 {
		newest = m.drainTimes[(m.drainIdx-1+drainWindow)%drainWindow]
		oldest = m.drainTimes[(m.drainIdx-n+drainWindow)%drainWindow]
	}
	m.drainMu.Unlock()
	if n < 2 || queueLen <= 0 {
		return 1
	}
	elapsed := newest.Sub(oldest)
	if elapsed <= 0 {
		return 1
	}
	perPop := elapsed / time.Duration(n-1)
	eta := perPop * time.Duration(queueLen)
	s := int((eta + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	if s > 60 {
		s = 60
	}
	return s
}

// Stats reports the census.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Submitted:       m.submitted,
		JobsRecovered:   m.recovered,
		CacheHits:       m.cacheHits,
		Coalesced:       m.coalesced,
		QueueLen:        len(m.queue),
		QueueCap:        m.cfg.QueueSize,
		Workers:         m.cfg.Workers,
		DeadlineExpired: m.deadlineExpired.Load(),
		Degraded:        m.degraded.Load(),
		PromotionsShed:  m.promotionsShed.Load(),
		RetryAfterS:     m.retryAfterFor(len(m.queue)),
		ResultCacheLen:  m.results.len(),
		GraphCacheLen:   m.graphs.len(),
		PlanBuilds:      m.eng.PlanBuilds(),
		PlanRestores:    m.eng.PlanRestores(),
	}
	if m.cfg.Store != nil {
		ss := m.cfg.Store.Stats()
		st.Store = &ss
	}
	for _, j := range m.jobs {
		j.mu.Lock()
		s := j.state
		st.Watchers += len(j.subs)
		j.mu.Unlock()
		switch s {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		case JobCancelled:
			st.Cancelled++
		}
	}
	return st
}

// Systems lists the registry systems the service accepts by name, with
// their content digests at the default export width.
func (m *Manager) Systems() ([]SystemInfo, error) {
	m.sysOnce.Do(func() {
		const listWidth = 16
		specs, err := systems.RegistrySpecs(listWidth)
		if err != nil {
			m.sysErr = err
			return
		}
		for _, sp := range specs {
			d, err := sp.Digest()
			if err != nil {
				m.sysErr = err
				return
			}
			sources := 0
			for i := range sp.Nodes {
				if sp.Nodes[i].Noise != nil {
					sources++
				}
			}
			m.sysList = append(m.sysList, SystemInfo{
				Name: sp.Name, Digest: d, Nodes: len(sp.Nodes), Sources: sources,
			})
		}
	})
	return m.sysList, m.sysErr
}
