package service

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
	"repro/internal/store"
)

func testStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// submitAndWait runs one request to completion and fails the test on any
// non-done outcome.
func submitAndWait(t *testing.T, m *Manager, req Request) *JobInfo {
	t.Helper()
	info, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, m, info.ID)
	if fin.State != JobDone {
		t.Fatalf("job %s: %s %q", fin.ID, fin.State, fin.Error)
	}
	return fin
}

// waitRunningStep watches a job until it has made at least one search step.
func waitRunningStep(t *testing.T, m *Manager, id string) {
	t.Helper()
	ch, stop, err := m.Watch(id)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("job finished before making a step")
			}
			if ev.Type == "progress" && ev.Step >= 1 {
				return
			}
		case <-deadline:
			t.Fatal("no progress within deadline")
		}
	}
}

// TestLRUCapClamp is the regression test for the non-positive-capacity
// bug: newLRU(0) (or negative) used to evict every entry immediately after
// insertion, silently disabling the cache.
func TestLRUCapClamp(t *testing.T) {
	for _, cap := range []int{0, -5} {
		c := newLRU(cap)
		c.put("k", 42)
		if v, ok := c.get("k"); !ok || v.(int) != 42 {
			t.Fatalf("newLRU(%d): entry evicted at insertion (ok=%v)", cap, ok)
		}
		if c.len() != 1 {
			t.Fatalf("newLRU(%d): len = %d, want 1", cap, c.len())
		}
		// The clamp keeps LRU semantics: a second key evicts the first.
		c.put("k2", 43)
		if _, ok := c.get("k"); ok {
			t.Fatalf("newLRU(%d): clamped cache held more than one entry", cap)
		}
	}
}

// TestSingleFlightCoalescesDuplicates: a duplicate submitted while its key
// is in flight attaches to the running job instead of searching again, and
// is answered with the leader's result.
func TestSingleFlightCoalescesDuplicates(t *testing.T) {
	m := testManager(t, Config{Workers: 1, StepThrottle: 20 * time.Millisecond})
	req := Request{System: "dwt97(fig3)", Options: testOptions("descent")}
	leader, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitRunningStep(t, m, leader.ID)
	follower, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if follower.State.Terminal() {
		t.Fatalf("follower resolved before the leader finished: %+v", follower)
	}
	if st := m.Stats(); st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", st.Coalesced)
	}
	finL := waitDone(t, m, leader.ID)
	finF := waitDone(t, m, follower.ID)
	if finL.State != JobDone || finF.State != JobDone {
		t.Fatalf("states %s/%s, want done/done", finL.State, finF.State)
	}
	if !finF.CacheHit {
		t.Fatal("coalesced follower not marked as served from the leader")
	}
	if finF.Result.Power != finL.Result.Power || finF.Result.Cost != finL.Result.Cost {
		t.Fatalf("follower result diverges from leader: %+v vs %+v", finF.Result, finL.Result)
	}
}

// TestSingleFlightPromotesFollowerOnCancel: cancelling the leader must not
// take its coalesced followers down — the first live follower is promoted
// and re-runs the search to completion.
func TestSingleFlightPromotesFollowerOnCancel(t *testing.T) {
	m := testManager(t, Config{Workers: 1, StepThrottle: 20 * time.Millisecond})
	req := Request{System: "dwt97(fig3)", Options: testOptions("descent")}
	leader, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitRunningStep(t, m, leader.ID)
	follower, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(leader.ID); err != nil {
		t.Fatal(err)
	}
	if fin := waitDone(t, m, leader.ID); fin.State != JobCancelled {
		t.Fatalf("leader state %s, want cancelled", fin.State)
	}
	fin := waitDone(t, m, follower.ID)
	if fin.State != JobDone {
		t.Fatalf("promoted follower state %s (%q), want done", fin.State, fin.Error)
	}
	if fin.CacheHit {
		t.Fatal("promoted follower claims a cache hit but must have searched itself")
	}
}

// TestQueuedCancelWithSaturatedPool is the Wait/throttle context audit: with
// every worker busy, cancelling queued jobs (or abandoning a Wait) must
// return promptly and must not strand job entries in a non-terminal state.
func TestQueuedCancelWithSaturatedPool(t *testing.T) {
	m := testManager(t, Config{Workers: 1, StepThrottle: 20 * time.Millisecond})
	hog, err := m.Submit(Request{System: "dwt97(fig3)", Options: spec.Options{
		Strategy: "descent", BudgetWidth: 8, MinFrac: 4, MaxFrac: 14, Seed: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitRunningStep(t, m, hog.ID)

	// Distinct systems so the queued jobs neither cache-hit nor coalesce.
	queued := []*JobInfo{}
	for _, sys := range []string{"decimator(M=4)", "interpolator(L=4)", "fir-lp31(tab1)"} {
		info, err := m.Submit(Request{System: sys, Options: testOptions("descent")})
		if err != nil {
			t.Fatal(err)
		}
		if info.State != JobQueued {
			t.Fatalf("%s: state %s, want queued behind the saturated pool", sys, info.State)
		}
		queued = append(queued, info)
	}

	// A Wait abandoned by its caller returns with the context's error even
	// though the job never leaves the queue.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := m.Wait(ctx, queued[0].ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait on queued job under dead context: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wait took %v to honor its context", elapsed)
	}

	// Cancelling queued jobs resolves them immediately; the entries are
	// terminal, not stranded, and the worker later skips them.
	for _, q := range queued {
		info, err := m.Cancel(q.ID)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != JobCancelled {
			t.Fatalf("%s: state %s immediately after queued cancel", q.ID, info.State)
		}
	}
	if _, err := m.Cancel(hog.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, hog.ID)
	st := m.Stats()
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("stranded jobs after cancellation sweep: %+v", st)
	}
}

// TestWatcherCountReturnsToZero: Stats' watcher census rises with
// subscriptions and returns to zero after unsubscribe — the in-process
// half of the SSE disconnect lifecycle.
func TestWatcherCountReturnsToZero(t *testing.T) {
	m := testManager(t, Config{Workers: 1, StepThrottle: 20 * time.Millisecond})
	info, err := m.Submit(Request{System: "dwt97(fig3)", Options: testOptions("descent")})
	if err != nil {
		t.Fatal(err)
	}
	_, stop1, err := m.Watch(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, stop2, err := m.Watch(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Watchers != 2 {
		t.Fatalf("watchers = %d, want 2", st.Watchers)
	}
	stop1()
	stop1() // idempotent
	if st := m.Stats(); st.Watchers != 1 {
		t.Fatalf("watchers after one unsubscribe = %d, want 1", st.Watchers)
	}
	stop2()
	if st := m.Stats(); st.Watchers != 0 {
		t.Fatalf("watchers after full unsubscribe = %d, want 0", st.Watchers)
	}
	waitDone(t, m, info.ID)
	if st := m.Stats(); st.Watchers != 0 {
		t.Fatalf("watchers after terminal = %d, want 0", st.Watchers)
	}
}

// TestPersistenceAcrossRestart is the tentpole's end-to-end property at
// the service layer: a second manager over the same store directory serves
// the duplicate submit from disk without queuing, and serves *new* options
// on the same digest from a restored plan — zero plan builds in the whole
// restarted process.
func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	req := Request{System: "dwt97(fig3)", Options: testOptions("descent")}

	m1 := New(Config{NPSD: 64, Workers: 2, Store: testStore(t, dir)})
	first := submitAndWait(t, m1, req)
	if st := m1.Stats(); st.PlanBuilds != 1 || st.PlanRestores != 0 {
		t.Fatalf("first process: plan builds/restores = %d/%d, want 1/0", st.PlanBuilds, st.PlanRestores)
	}
	m1.Close()

	// "Restart": a fresh manager, fresh engine, same directory.
	m2 := testManager(t, Config{Workers: 2, Store: testStore(t, dir)})
	dup := submitAndWait(t, m2, req)
	if !dup.CacheHit {
		t.Fatal("duplicate submit after restart not served from the persistent store")
	}
	if dup.Result.Power != first.Result.Power || dup.Result.Cost != first.Result.Cost ||
		dup.Budget != first.Budget {
		t.Fatalf("persisted result diverges: %+v (budget %v) vs %+v (budget %v)",
			dup.Result, dup.Budget, first.Result, first.Result)
	}

	// New options on the warm digest: a real search, on a restored plan.
	req2 := req
	req2.Options.Seed = 99
	fin := submitAndWait(t, m2, req2)
	st := m2.Stats()
	if st.PlanBuilds != 0 {
		t.Fatalf("restarted process built %d plans; the store was supposed to prevent all of them", st.PlanBuilds)
	}
	if st.PlanRestores != 1 {
		t.Fatalf("plan restores = %d, want 1", st.PlanRestores)
	}
	if st.Store == nil || st.Store.Hits == 0 {
		t.Fatalf("store stats missing hits: %+v", st.Store)
	}

	// Bit-identity through the whole stack: the same search on a purely
	// in-memory manager lands on the identical optimum.
	m3 := testManager(t, Config{Workers: 2})
	ref := submitAndWait(t, m3, req2)
	if fin.Result.Power != ref.Result.Power || fin.Result.Cost != ref.Result.Cost {
		t.Fatalf("restored-plan search diverges from fresh-plan search: %+v vs %+v", fin.Result, ref.Result)
	}
	if len(fin.Result.Fracs) != len(ref.Result.Fracs) {
		t.Fatalf("frac maps differ: %v vs %v", fin.Result.Fracs, ref.Result.Fracs)
	}
	for k, v := range ref.Result.Fracs {
		if fin.Result.Fracs[k] != v {
			t.Fatalf("source %s: frac %d vs %d", k, fin.Result.Fracs[k], v)
		}
	}
}

// TestCorruptStoreEntriesAreRebuilt: mangling every on-disk entry between
// restarts must not crash the daemon or serve bad data — the corrupt
// entries are detected, dropped, and rewritten by the next job.
func TestCorruptStoreEntriesAreRebuilt(t *testing.T) {
	dir := t.TempDir()
	req := Request{System: "decimator(M=4)", Options: testOptions("descent")}

	m1 := New(Config{NPSD: 64, Workers: 2, Store: testStore(t, dir)})
	first := submitAndWait(t, m1, req)
	m1.Close()

	// Truncate every entry in place.
	mangled := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".wls") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		mangled++
		return os.WriteFile(path, data[:len(data)/2], 0o644)
	})
	if err != nil || mangled == 0 {
		t.Fatalf("mangled %d entries, err %v", mangled, err)
	}

	m2 := testManager(t, Config{Workers: 2, Store: testStore(t, dir)})
	redo := submitAndWait(t, m2, req)
	if redo.CacheHit {
		t.Fatal("corrupt entry served as a hit")
	}
	if redo.Result.Power != first.Result.Power {
		t.Fatalf("rebuilt result diverges: %+v vs %+v", redo.Result, first.Result)
	}
	st := m2.Stats()
	if st.Store == nil || st.Store.Corrupt == 0 {
		t.Fatalf("corruption not recorded: %+v", st.Store)
	}
	m2.Close()

	// Third process: the write-through repaired the store.
	m3 := testManager(t, Config{Workers: 2, Store: testStore(t, dir)})
	again := submitAndWait(t, m3, req)
	if !again.CacheHit {
		t.Fatal("store not repaired by write-through")
	}
	if st := m3.Stats(); st.PlanBuilds != 0 {
		t.Fatalf("repaired store still caused %d plan builds", st.PlanBuilds)
	}
}
