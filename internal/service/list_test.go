package service

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// submitDistinct runs n jobs to completion, each with a distinct options
// seed (distinct cache keys, so none is served from cache), and returns
// their IDs in submission order.
func submitDistinct(t *testing.T, m *Manager, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		opts := testOptions("descent")
		opts.Seed = int64(i + 1)
		info, err := m.Submit(Request{System: "fir-lp31(tab1)", Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		if fin := waitDone(t, m, info.ID); fin.State != JobDone {
			t.Fatalf("job %s: %s (%s)", info.ID, fin.State, fin.Error)
		}
		ids = append(ids, info.ID)
	}
	return ids
}

func TestListPagePagination(t *testing.T) {
	m := testManager(t, Config{Workers: 1})
	ids := submitDistinct(t, m, 5)

	// Page through with limit 2: 2 + 2 + 1, cursors chaining exactly.
	var got []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 3 {
			t.Fatalf("pagination did not terminate; got %v", got)
		}
		page, err := m.ListPage(ListQuery{Limit: 2, Cursor: cursor})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range page.Jobs {
			got = append(got, j.ID)
		}
		if page.NextCursor == "" {
			break
		}
		if want := got[len(got)-1]; page.NextCursor != want {
			t.Fatalf("next_cursor %q, want last ID of page %q", page.NextCursor, want)
		}
		cursor = page.NextCursor
	}
	if strings.Join(got, ",") != strings.Join(ids, ",") {
		t.Fatalf("paged IDs %v, want %v", got, ids)
	}

	// A full final page must not dangle a cursor pointing at nothing.
	page, err := m.ListPage(ListQuery{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 5 || page.NextCursor != "" {
		t.Fatalf("exact-fit page: %d jobs, cursor %q", len(page.Jobs), page.NextCursor)
	}
}

func TestListPageStateFilterAndValidation(t *testing.T) {
	m := testManager(t, Config{Workers: 1})
	submitDistinct(t, m, 2)

	page, err := m.ListPage(ListQuery{State: JobDone})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 2 {
		t.Fatalf("%d done jobs, want 2", len(page.Jobs))
	}
	page, err = m.ListPage(ListQuery{State: JobFailed})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 0 {
		t.Fatalf("%d failed jobs, want 0", len(page.Jobs))
	}

	if _, err := m.ListPage(ListQuery{State: "nope"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown state error %v, want ErrBadRequest", err)
	}
	if _, err := m.ListPage(ListQuery{Cursor: "garbage"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad cursor error %v, want ErrBadRequest", err)
	}
}

func TestListPageDefaultAndClampedLimit(t *testing.T) {
	m := testManager(t, Config{Workers: 1})
	submitDistinct(t, m, 3)
	// Limit 0 applies the default (well above 3 here — all jobs return).
	page, err := m.ListPage(ListQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 3 || page.NextCursor != "" {
		t.Fatalf("default limit page: %d jobs, cursor %q", len(page.Jobs), page.NextCursor)
	}
	// An absurd limit is clamped, not rejected.
	if _, err := m.ListPage(ListQuery{Limit: 10 * MaxListLimit}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeIDPrefixesJobIDsAndCursorsStillWork(t *testing.T) {
	m := testManager(t, Config{Workers: 1, NodeID: "nodeA"})
	ids := submitDistinct(t, m, 2)
	for _, id := range ids {
		if !strings.HasPrefix(id, "nodeA-j") {
			t.Fatalf("job ID %q lacks node prefix", id)
		}
	}
	page, err := m.ListPage(ListQuery{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if page.NextCursor != ids[0] {
		t.Fatalf("cursor %q, want %q", page.NextCursor, ids[0])
	}
	page, err = m.ListPage(ListQuery{Limit: 1, Cursor: page.NextCursor})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 1 || page.Jobs[0].ID != ids[1] {
		t.Fatalf("second page %+v, want %q", page.Jobs, ids[1])
	}
}

func TestQueueStatsExposed(t *testing.T) {
	m := testManager(t, Config{Workers: 2, QueueSize: 7})
	st := m.Stats()
	if st.QueueCap != 7 || st.Workers != 2 || st.QueueLen != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestOnJobDoneFiresOncePerTerminalJob covers the three terminal paths the
// API layer's latency histograms depend on: a run to completion, a cache
// hit, and a queued-job cancellation.
func TestOnJobDoneFiresOncePerTerminalJob(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	states := map[string]JobState{}
	m := testManager(t, Config{Workers: 1, OnJobDone: func(info *JobInfo) {
		mu.Lock()
		seen[info.ID]++
		states[info.ID] = info.State
		mu.Unlock()
	}})

	info, err := m.Submit(Request{System: "fir-lp31(tab1)", Options: testOptions("descent")})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, info.ID)

	// Duplicate: served from cache, still a terminal job of its own.
	dup, err := m.Submit(Request{System: "fir-lp31(tab1)", Options: testOptions("descent")})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, dup.ID)

	mu.Lock()
	defer mu.Unlock()
	if seen[info.ID] != 1 || states[info.ID] != JobDone {
		t.Fatalf("leader hook: %d calls, state %s", seen[info.ID], states[info.ID])
	}
	if seen[dup.ID] != 1 || states[dup.ID] != JobDone {
		t.Fatalf("cache-hit hook: %d calls, state %s", seen[dup.ID], states[dup.ID])
	}
}
