package service

import (
	"bytes"
	"log/slog"
	"testing"
	"time"

	"repro/internal/spec"
)

// Deadline-aware admission control: jobs whose deadline expires while
// waiting are shed before any search runs; a deadline that fires
// mid-search truncates to a degraded best-so-far answer that is served
// but never cached; and a cancelled leader's promoted follower that hits
// a full queue is shed observably rather than stranded.

func deadlinedOptions(strategy string, ms int64) spec.Options {
	o := testOptions(strategy)
	o.DeadlineMS = ms
	return o
}

// TestDeadlineExpiresQueuedJob: with the single worker occupied, a
// short-deadline job must be answered deadline_exceeded from the queue —
// fast-failed without ever reaching a worker.
func TestDeadlineExpiresQueuedJob(t *testing.T) {
	m := testManager(t, Config{Workers: 1, StepThrottle: 30 * time.Millisecond})
	running, err := m.Submit(Request{System: "dwt97(fig3)", Options: spec.Options{
		Strategy: "descent", BudgetWidth: 8, MinFrac: 4, MaxFrac: 14, Seed: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(Request{System: "decimator(M=4)", Options: deadlinedOptions("descent", 150)})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, m, queued.ID)
	if fin.State != JobFailed {
		t.Fatalf("queued deadlined job: state %s, want failed (error %q)", fin.State, fin.Error)
	}
	if fin.ErrorCode != "deadline_exceeded" {
		t.Fatalf("error code %q, want deadline_exceeded (error %q)", fin.ErrorCode, fin.Error)
	}
	if fin.Result != nil {
		t.Fatalf("shed job must not carry a result: %+v", fin.Result)
	}
	st := m.Stats()
	if st.DeadlineExpired != 1 {
		t.Fatalf("deadline_expired %d, want 1", st.DeadlineExpired)
	}
	if st.RetryAfterS < 1 {
		t.Fatalf("retry_after_s %d, want >= 1", st.RetryAfterS)
	}
	// The worker was never disturbed: the long job still completes.
	if _, err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, running.ID)
}

// TestDeadlineDegradesRunningSearch: a deadline that fires mid-search
// yields a degraded best-so-far answer (done, not failed), and that
// answer must not be cached — the next undegraded submission of the same
// key runs the search for real instead of inheriting the truncation.
func TestDeadlineDegradesRunningSearch(t *testing.T) {
	m := testManager(t, Config{Workers: 1, StepThrottle: 50 * time.Millisecond})
	req := Request{System: "dwt97(fig3)", Options: spec.Options{
		Strategy: "descent", BudgetWidth: 8, MinFrac: 4, MaxFrac: 14, Seed: 1,
		DeadlineMS: 400,
	}}
	info, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, m, info.ID)
	if fin.State != JobDone {
		t.Fatalf("deadlined running job: state %s, want done (error %q)", fin.State, fin.Error)
	}
	if fin.Result == nil || !fin.Result.Degraded {
		t.Fatalf("result should be degraded best-so-far, got %+v", fin.Result)
	}
	if fin.Result.Cancelled {
		t.Fatal("degraded result must not also read as cancelled")
	}
	if got := m.Stats().Degraded; got != 1 {
		t.Fatalf("degraded stat %d, want 1", got)
	}

	// Same system, same options, no deadline: the fingerprint is identical
	// (deadline_ms is excluded), so a cache hit here would mean the
	// degraded answer was cached.
	again, err := m.Submit(Request{System: "dwt97(fig3)", Options: spec.Options{
		Strategy: "descent", BudgetWidth: 8, MinFrac: 4, MaxFrac: 14, Seed: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHit {
		t.Fatal("degraded result was served from the cache")
	}
	if _, err := m.Cancel(again.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, again.ID)
}

// TestPromotedFollowerShedWhenQueueFull pins the settle path where a
// cancelled leader's follower is promoted into a full queue: the cohort
// must be shed explicitly — counted, logged with the job's trace ID, and
// answered queue_full — never stranded waiting for a settle that already
// happened.
func TestPromotedFollowerShedWhenQueueFull(t *testing.T) {
	var logBuf bytes.Buffer
	m := testManager(t, Config{
		Workers: 1, QueueSize: 1, StepThrottle: 30 * time.Millisecond,
		Log: slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	leaderReq := Request{System: "dwt97(fig3)", Options: spec.Options{
		Strategy: "descent", BudgetWidth: 8, MinFrac: 4, MaxFrac: 14, Seed: 1,
	}}
	leader, err := m.Submit(leaderReq)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pop the leader, so the queue slot is free for
	// the filler and the next identical submission coalesces on a
	// *running* leader.
	for deadline := time.Now().Add(30 * time.Second); ; {
		info, err := m.Get(leader.ID)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leader never started running: %s", info.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Fill the only queue slot with an unrelated job.
	filler, err := m.Submit(Request{System: "decimator(M=4)", Options: testOptions("descent")})
	if err != nil {
		t.Fatal(err)
	}
	// Identical request coalesces onto the running leader (no queue slot).
	follower, err := m.Submit(leaderReq)
	if err != nil {
		t.Fatal(err)
	}
	if follower.ID == leader.ID {
		t.Fatal("follower was deduplicated into the leader's ID")
	}
	if m.Stats().Coalesced != 1 {
		t.Fatalf("coalesced %d, want 1", m.Stats().Coalesced)
	}

	if _, err := m.Cancel(leader.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitDone(t, m, follower.ID)
	if fin.State != JobFailed {
		t.Fatalf("shed follower: state %s, want failed (error %q)", fin.State, fin.Error)
	}
	if fin.ErrorCode != "queue_full" {
		t.Fatalf("error code %q, want queue_full (error %q)", fin.ErrorCode, fin.Error)
	}
	if got := m.Stats().PromotionsShed; got != 1 {
		t.Fatalf("promotions_shed %d, want 1", got)
	}
	if !bytes.Contains(logBuf.Bytes(), []byte("shedding promoted follower")) ||
		!bytes.Contains(logBuf.Bytes(), []byte(fin.TraceID)) {
		t.Fatalf("shed event missing from log (want message + trace_id %s):\n%s", fin.TraceID, logBuf.String())
	}
	// The filler job was untouched by the shed.
	waitDone(t, m, filler.ID)
}

// TestRetryAfterFromDrainRate exercises the drain-rate arithmetic behind
// Retry-After directly: a synthetic 100ms-per-pop history must yield
// ceil(queue_len × 100ms) seconds, clamped to [1, 60].
func TestRetryAfterFromDrainRate(t *testing.T) {
	m := testManager(t, Config{})
	if got := m.RetryAfter(); got != 1 {
		t.Fatalf("cold-start retry-after %d, want 1", got)
	}
	now := time.Now()
	m.drainMu.Lock()
	for i := 0; i < 5; i++ {
		m.drainTimes[i] = now.Add(time.Duration(i) * 100 * time.Millisecond)
	}
	m.drainN, m.drainIdx = 5, 5
	m.drainMu.Unlock()
	for _, tc := range []struct{ queueLen, want int }{
		{0, 1},     // empty queue: retry immediately
		{10, 1},    // 10 × 100ms = 1s
		{45, 5},    // 4.5s rounds up
		{1000, 60}, // clamped
	} {
		if got := m.retryAfterFor(tc.queueLen); got != tc.want {
			t.Fatalf("retryAfterFor(%d) = %d, want %d", tc.queueLen, got, tc.want)
		}
	}
}
