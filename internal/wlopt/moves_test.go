package wlopt

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sfg"
)

// batchOnlyEvaluator hides core.Engine's move path, forcing the oracle's
// materialize-assignments fallback. Strategies must behave identically —
// same assignment, same power, same oracle-call count — whichever path
// scores their candidate moves.
type batchOnlyEvaluator struct {
	eng *core.Engine
}

func (b batchOnlyEvaluator) Name() string { return b.eng.Name() }

func (b batchOnlyEvaluator) Evaluate(g *sfg.Graph) (*core.Result, error) {
	return b.eng.Evaluate(g)
}

func (b batchOnlyEvaluator) EvaluateBatch(g *sfg.Graph, as []core.Assignment) ([]*core.Result, error) {
	return b.eng.EvaluateBatch(g, as)
}

// TestStrategiesMovePathEquivalence: every registered strategy run with the
// move-capable engine equals the same run with the move path hidden —
// bit-identical results and identical Result.Evaluations, pinning both the
// delta evaluation and the oracle-call accounting of PowersMoves.
func TestStrategiesMovePathEquivalence(t *testing.T) {
	for _, name := range Strategies() {
		for _, graph := range []string{"two-stage", "dwt"} {
			gm, opt := goldenGraph(t, graph)
			opt.Seed = 5
			viaMoves, err := RunStrategy(gm, name, opt)
			if err != nil {
				t.Fatalf("%s on %s via moves: %v", name, graph, err)
			}
			gb, opt2 := goldenGraph(t, graph)
			opt2.Seed = 5
			opt2.Evaluator = batchOnlyEvaluator{eng: core.NewEngine(256, 1)}
			viaBatch, err := RunStrategy(gb, name, opt2)
			if err != nil {
				t.Fatalf("%s on %s via batch: %v", name, graph, err)
			}
			if !reflect.DeepEqual(viaMoves.Fracs, viaBatch.Fracs) {
				t.Errorf("%s on %s: fracs diverge: moves %v, batch %v", name, graph, viaMoves.Fracs, viaBatch.Fracs)
			}
			if viaMoves.Power != viaBatch.Power || viaMoves.Cost != viaBatch.Cost {
				t.Errorf("%s on %s: power/cost diverge: %.17g/%g vs %.17g/%g",
					name, graph, viaMoves.Power, viaMoves.Cost, viaBatch.Power, viaBatch.Cost)
			}
			if viaMoves.Evaluations != viaBatch.Evaluations {
				t.Errorf("%s on %s: oracle-call accounting diverges: %d via moves, %d via batch",
					name, graph, viaMoves.Evaluations, viaBatch.Evaluations)
			}
			if viaMoves.UniformFrac != viaBatch.UniformFrac || viaMoves.UniformCost != viaBatch.UniformCost {
				t.Errorf("%s on %s: uniform baseline diverges", name, graph)
			}
		}
	}
}

// TestPowersMovesAccounting: PowersMoves counts one oracle call per move on
// both the scalar path and the fallback, and returns powers within the
// 1e-12 relative contract (the scalar tier reassociates the variance sum,
// so cross-path powers are close, not bitwise equal; decision equivalence
// is pinned by TestStrategiesMovePathEquivalence).
func TestPowersMovesAccounting(t *testing.T) {
	g := buildTwoStage(t)
	opt := Options{Budget: 1e-8, MinFrac: 4, MaxFrac: 24}
	base := core.AssignmentOf(g)
	var moves []core.Move
	for _, id := range g.NoiseSources() {
		moves = append(moves, core.Move{Source: id, Frac: base[id] - 1})
	}

	withMoves := newOracle(g, opt)
	if withMoves.mover == nil {
		t.Fatal("default engine should be move-capable")
	}
	p1, err := withMoves.PowersMoves(base, moves)
	if err != nil {
		t.Fatal(err)
	}
	if withMoves.Evaluations() != len(moves) {
		t.Fatalf("delta path counted %d calls, want %d", withMoves.Evaluations(), len(moves))
	}

	opt.Evaluator = batchOnlyEvaluator{eng: core.NewEngine(256, 1)}
	fallback := newOracle(g, opt)
	if fallback.mover != nil {
		t.Fatal("batch-only wrapper leaked the move path")
	}
	p2, err := fallback.PowersMoves(base, moves)
	if err != nil {
		t.Fatal(err)
	}
	if fallback.Evaluations() != len(moves) {
		t.Fatalf("fallback counted %d calls, want %d", fallback.Evaluations(), len(moves))
	}
	if len(p1) != len(p2) {
		t.Fatalf("move power counts diverge: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if rel := math.Abs(p1[i]-p2[i]) / math.Max(p1[i], p2[i]); rel > 1e-12 {
			t.Fatalf("move %d powers diverge beyond 1e-12 across paths: scalar %g, fallback %g", i, p1[i], p2[i])
		}
	}
}
