package wlopt

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/sfg"
)

// cancellingOracle wraps a move-capable evaluator and fires a
// context.CancelFunc after a fixed number of oracle calls, so each strategy
// can be interrupted at a deterministic point mid-search.
type cancellingOracle struct {
	eng    *core.Engine
	cancel context.CancelFunc
	after  int
	calls  int
}

func (c *cancellingOracle) bump() {
	c.calls++
	if c.calls == c.after {
		c.cancel()
	}
}

func (c *cancellingOracle) Name() string { return "cancelling(" + c.eng.Name() + ")" }

func (c *cancellingOracle) Evaluate(g *sfg.Graph) (*core.Result, error) {
	c.bump()
	return c.eng.Evaluate(g)
}

func (c *cancellingOracle) EvaluateBatch(g *sfg.Graph, as []core.Assignment) ([]*core.Result, error) {
	c.bump()
	return c.eng.EvaluateBatch(g, as)
}

func (c *cancellingOracle) EvaluateMoves(g *sfg.Graph, base core.Assignment, moves []core.Move) ([]*core.Result, error) {
	c.bump()
	return c.eng.EvaluateMoves(g, base, moves)
}

var _ core.MoveEvaluator = (*cancellingOracle)(nil)

func cancelOptions(t *testing.T, ev core.Evaluator, ctx context.Context) Options {
	t.Helper()
	return Options{
		Budget:    1e-8,
		MinFrac:   4,
		MaxFrac:   20,
		Evaluator: ev,
		Seed:      1,
		Context:   ctx,
	}
}

// TestCancelMidSearchPerStrategy interrupts every registered strategy a few
// oracle rounds in and checks the contract: no error, Cancelled set, a
// complete best-so-far assignment within bounds, and strictly fewer oracle
// calls than the uncancelled run.
func TestCancelMidSearchPerStrategy(t *testing.T) {
	for _, name := range Strategies() {
		t.Run(name, func(t *testing.T) {
			full, err := RunStrategy(buildTwoStage(t), name, Options{
				Budget: 1e-8, MinFrac: 4, MaxFrac: 20,
				Evaluator: core.NewEngine(128, 1), Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if full.Cancelled {
				t.Fatal("uncancelled run reports Cancelled")
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// Let feasibility plus a few search rounds through, then cancel.
			ev := &cancellingOracle{eng: core.NewEngine(128, 1), cancel: cancel, after: 4}
			g := buildTwoStage(t)
			res, err := RunStrategy(g, name, cancelOptions(t, ev, ctx))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Cancelled {
				t.Fatal("cancelled run does not report Cancelled")
			}
			if len(res.Fracs) != 3 {
				t.Fatalf("cancelled run lost sources: %v", res.Fracs)
			}
			for name, f := range res.Fracs {
				if f < 4 || f > 20 {
					t.Fatalf("source %s width %d outside bounds", name, f)
				}
			}
			if res.Evaluations >= full.Evaluations {
				t.Fatalf("cancelled run used %d oracle calls, full run %d — cancellation did not stop the search",
					res.Evaluations, full.Evaluations)
			}
			// The reported power must still describe the mutated graph.
			check, err := core.NewPSDEvaluator(128).Evaluate(g)
			if err != nil {
				t.Fatal(err)
			}
			if check.Power != res.Power {
				t.Fatalf("graph power %g does not match reported %g", check.Power, res.Power)
			}
		})
	}
}

// TestCancelBeforeStart runs every strategy under an already-cancelled
// context: the search must return immediately with the trivial assignment
// of its direction, still flagged Cancelled, not hang or error.
func TestCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Strategies() {
		t.Run(name, func(t *testing.T) {
			res, err := RunStrategy(buildTwoStage(t), name, cancelOptions(t, core.NewEngine(128, 1), ctx))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Cancelled {
				t.Fatal("run under cancelled context not flagged")
			}
			if len(res.Fracs) != 3 {
				t.Fatalf("fracs %v", res.Fracs)
			}
		})
	}
}

// TestProgressEvents checks the per-step stream: steps count up from 1,
// oracle calls are non-decreasing, and the strategy label matches.
func TestProgressEvents(t *testing.T) {
	for _, name := range Strategies() {
		t.Run(name, func(t *testing.T) {
			var events []ProgressEvent
			res, err := RunStrategy(buildTwoStage(t), name, Options{
				Budget: 1e-8, MinFrac: 4, MaxFrac: 20,
				Evaluator: core.NewEngine(128, 1), Seed: 1,
				Progress: func(ev ProgressEvent) { events = append(events, ev) },
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(events) == 0 {
				t.Fatal("no progress events")
			}
			for i, ev := range events {
				if ev.Step != i+1 {
					t.Fatalf("event %d has step %d", i, ev.Step)
				}
				if ev.Strategy != name {
					t.Fatalf("event strategy %q, want %q", ev.Strategy, name)
				}
				if i > 0 && ev.Evaluations < events[i-1].Evaluations {
					t.Fatalf("oracle calls went backwards: %d -> %d", events[i-1].Evaluations, ev.Evaluations)
				}
			}
			if last := events[len(events)-1]; last.Evaluations > res.Evaluations {
				t.Fatalf("last event reports %d evaluations, result %d", last.Evaluations, res.Evaluations)
			}
		})
	}
}
