package wlopt

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sfg"
	"repro/internal/systems"
)

func testGraphs(t *testing.T) map[string]func() *sfg.Graph {
	t.Helper()
	return map[string]func() *sfg.Graph{
		"two-stage": func() *sfg.Graph { return buildTwoStage(t) },
		"dwt": func() *sfg.Graph {
			g, err := systems.NewDWT().Graph(16)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
	}
}

func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Fracs, b.Fracs) {
		t.Fatalf("%s: assignments diverge: %v vs %v", label, a.Fracs, b.Fracs)
	}
	if a.Power != b.Power {
		t.Fatalf("%s: powers diverge: %g vs %g", label, a.Power, b.Power)
	}
	if a.Cost != b.Cost || a.UniformFrac != b.UniformFrac || a.UniformCost != b.UniformCost {
		t.Fatalf("%s: costs diverge: %+v vs %+v", label, a, b)
	}
	if a.Evaluations != b.Evaluations {
		t.Fatalf("%s: evaluation counts diverge: %d vs %d", label, a.Evaluations, b.Evaluations)
	}
}

// TestOptimizeWorkersEquivalence: the parallel greedy descent must return
// exactly the serial result — same widths, same power, same oracle-call
// count — for any worker pool width.
func TestOptimizeWorkersEquivalence(t *testing.T) {
	for name, build := range testGraphs(t) {
		opt := Options{Budget: 1e-8, MinFrac: 4, MaxFrac: 24}
		if name == "dwt" {
			opt.Budget = 1e-7
			opt.MaxFrac = 20
		}
		serialOpt := opt
		serialOpt.Workers = 1
		serial, err := Optimize(build(), serialOpt)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, workers := range []int{2, 8} {
			parOpt := opt
			parOpt.Workers = workers
			par, err := Optimize(build(), parOpt)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			sameResult(t, name, par, serial)
		}
	}
}

// TestOptimizeAscentWorkersEquivalence: same contract for the dual greedy.
func TestOptimizeAscentWorkersEquivalence(t *testing.T) {
	for name, build := range testGraphs(t) {
		opt := Options{Budget: 1e-8, MinFrac: 4, MaxFrac: 24}
		if name == "dwt" {
			opt.Budget = 1e-7
			opt.MaxFrac = 20
		}
		serialOpt := opt
		serialOpt.Workers = 1
		serial, err := OptimizeAscent(build(), serialOpt)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		parOpt := opt
		parOpt.Workers = 8
		par, err := OptimizeAscent(build(), parOpt)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		sameResult(t, name, par, serial)
	}
}

// TestOptimizeExplicitEngine: passing a shared engine as the evaluator
// matches the default path and leaves the engine reusable.
func TestOptimizeExplicitEngine(t *testing.T) {
	eng := core.NewEngine(256, 4)
	g := buildTwoStage(t)
	res, err := Optimize(g, Options{Budget: 1e-8, MinFrac: 4, MaxFrac: 24, Evaluator: eng})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Optimize(buildTwoStage(t), Options{Budget: 1e-8, MinFrac: 4, MaxFrac: 24})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "explicit-engine", res, def)
	// The engine still answers for the mutated graph.
	check, err := eng.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	if check.Power != res.Power {
		t.Fatalf("engine disagrees with result on final graph: %g vs %g", check.Power, res.Power)
	}
}

// TestOptimizeSerialEvaluatorFallback: a plain (non-batch) evaluator takes
// the mutate-evaluate-restore path and must land on the same assignment.
func TestOptimizeSerialEvaluatorFallback(t *testing.T) {
	plain, err := Optimize(buildTwoStage(t), Options{
		Budget: 1e-8, MinFrac: 4, MaxFrac: 24,
		Evaluator: core.NewPSDEvaluator(256),
	})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Optimize(buildTwoStage(t), Options{Budget: 1e-8, MinFrac: 4, MaxFrac: 24, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "serial-fallback", plain, batch)
}
