// Package wlopt implements the application that motivates the paper: the
// fixed-point refinement loop. A word-length optimizer assigns fractional
// bits to every quantization-noise source so that the output noise power
// meets a budget at minimum hardware cost, using one of the analytical
// evaluators from package core as its accuracy oracle. Because the greedy
// search evaluates the system hundreds of times, the 3-5 orders of
// magnitude between analytical estimation and Monte-Carlo simulation
// (Fig. 6) is the difference between milliseconds and days.
package wlopt

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sfg"
)

// Options configures the optimization.
type Options struct {
	// Budget is the maximum acceptable output noise power.
	Budget float64
	// MinFrac / MaxFrac bound every source's fractional width.
	MinFrac, MaxFrac int
	// CostPerBit weights each source's width in the cost function; nil
	// means unit weight (cost = total fractional bits). Keys are source
	// names.
	CostPerBit map[string]float64
	// Evaluator is the accuracy oracle; nil selects the proposed PSD
	// method with 256 bins.
	Evaluator core.Evaluator
}

// Result reports the optimized assignment.
type Result struct {
	// Fracs is the chosen fractional width per source name.
	Fracs map[string]int
	// Power is the evaluated output noise power of the assignment.
	Power float64
	// Cost is the weighted bit total.
	Cost float64
	// Evaluations counts oracle calls — the quantity the paper's speedup
	// multiplies.
	Evaluations int
	// UniformFrac is the smallest uniform width meeting the budget, for
	// comparison with the non-uniform assignment.
	UniformFrac int
	// UniformCost is the cost of that uniform assignment.
	UniformCost float64
}

// Optimize runs a greedy max-minus-one descent: starting from MaxFrac
// everywhere (which must meet the budget), it repeatedly removes one bit
// from the source whose removal keeps the budget satisfied while freeing
// the most cost, until no single-bit removal is feasible. The graph's
// source widths are left at the optimized assignment.
func Optimize(g *sfg.Graph, opt Options) (*Result, error) {
	if opt.Budget <= 0 {
		return nil, fmt.Errorf("wlopt: budget %g must be positive", opt.Budget)
	}
	if opt.MinFrac < 1 || opt.MaxFrac < opt.MinFrac || opt.MaxFrac > 48 {
		return nil, fmt.Errorf("wlopt: bad width bounds [%d, %d]", opt.MinFrac, opt.MaxFrac)
	}
	ev := opt.Evaluator
	if ev == nil {
		ev = core.NewPSDEvaluator(256)
	}
	sources := g.NoiseSources()
	if len(sources) == 0 {
		return nil, fmt.Errorf("wlopt: graph has no noise sources")
	}
	res := &Result{Fracs: map[string]int{}}
	weight := func(name string) float64 {
		if opt.CostPerBit == nil {
			return 1
		}
		if w, ok := opt.CostPerBit[name]; ok {
			return w
		}
		return 1
	}
	setAll := func(frac int) {
		for _, id := range sources {
			g.Node(id).Noise.Frac = frac
		}
	}
	evaluate := func() (float64, error) {
		res.Evaluations++
		r, err := ev.Evaluate(g)
		if err != nil {
			return 0, err
		}
		return r.Power, nil
	}

	// Feasibility at MaxFrac.
	setAll(opt.MaxFrac)
	p, err := evaluate()
	if err != nil {
		return nil, err
	}
	if p > opt.Budget {
		return nil, fmt.Errorf("wlopt: budget %g unreachable even at %d fractional bits (power %g)",
			opt.Budget, opt.MaxFrac, p)
	}

	// Uniform baseline: smallest uniform width meeting the budget.
	res.UniformFrac = opt.MaxFrac
	for f := opt.MaxFrac - 1; f >= opt.MinFrac; f-- {
		setAll(f)
		p, err := evaluate()
		if err != nil {
			return nil, err
		}
		if p > opt.Budget {
			break
		}
		res.UniformFrac = f
	}
	for _, id := range sources {
		res.UniformCost += weight(g.Node(id).Noise.Name) * float64(res.UniformFrac)
	}

	// Greedy descent from MaxFrac.
	setAll(opt.MaxFrac)
	for {
		type cand struct {
			id    sfg.NodeID
			power float64
			gain  float64
		}
		var cands []cand
		for _, id := range sources {
			n := g.Node(id)
			if n.Noise.Frac <= opt.MinFrac {
				continue
			}
			n.Noise.Frac--
			p, err := evaluate()
			n.Noise.Frac++
			if err != nil {
				return nil, err
			}
			if p <= opt.Budget {
				cands = append(cands, cand{id: id, power: p, gain: weight(n.Noise.Name)})
			}
		}
		if len(cands) == 0 {
			break
		}
		// Prefer the largest cost gain; break ties toward the smallest
		// resulting power (keeps slack for later removals).
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].gain != cands[j].gain {
				return cands[i].gain > cands[j].gain
			}
			return cands[i].power < cands[j].power
		})
		g.Node(cands[0].id).Noise.Frac--
	}

	final, err := evaluate()
	if err != nil {
		return nil, err
	}
	res.Power = final
	for _, id := range sources {
		n := g.Node(id)
		res.Fracs[n.Noise.Name] = n.Noise.Frac
		res.Cost += weight(n.Noise.Name) * float64(n.Noise.Frac)
	}
	return res, nil
}
