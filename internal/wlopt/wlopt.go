// Package wlopt implements the application that motivates the paper: the
// fixed-point refinement loop. A word-length optimizer assigns fractional
// bits to every quantization-noise source so that the output noise power
// meets a budget at minimum hardware cost, using one of the analytical
// evaluators from package core as its accuracy oracle. Because every search
// procedure evaluates the system hundreds of times, the 3-5 orders of
// magnitude between analytical estimation and Monte-Carlo simulation
// (Fig. 6) is the difference between milliseconds and days — and because
// the candidate moves of one search step are independent, they are scored
// concurrently through core.BatchEvaluator when the oracle supports it.
//
// The search procedures themselves are pluggable: each one implements
// Strategy and registers itself under a stable name (see strategy.go).
// Four ship with the package — the greedy max-minus-one descent
// ("descent", also reachable as Optimize), the classical min-plus-one
// ascent ("ascent", OptimizeAscent), a hybrid climb-then-trim search
// ("hybrid"), and a seeded simulated-annealing search ("anneal").
package wlopt

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/sfg"
)

// Options configures the optimization.
type Options struct {
	// Budget is the maximum acceptable output noise power.
	Budget float64
	// MinFrac / MaxFrac bound every source's fractional width.
	MinFrac, MaxFrac int
	// CostPerBit weights each source's width in the cost function; nil
	// means unit weight (cost = total fractional bits). Keys are source
	// names.
	CostPerBit map[string]float64
	// Evaluator is the accuracy oracle; nil selects the proposed PSD
	// method with 256 bins, plan-cached and batch-parallel (core.Engine).
	Evaluator core.Evaluator
	// Workers bounds the number of concurrent candidate evaluations per
	// search step when the default engine is used; <= 0 selects
	// runtime.GOMAXPROCS(0). The optimization result is identical for
	// every Workers value — only wall-clock time changes. A caller-
	// provided Evaluator manages its own parallelism (batch-capable
	// evaluators are fanned out; plain evaluators run serially).
	Workers int
	// Seed seeds the randomized strategies ("anneal"); <= 0 selects 1.
	// A fixed seed makes those strategies fully deterministic at any
	// Workers value.
	Seed int64
	// AnnealRounds bounds the annealing strategy's proposal rounds;
	// <= 0 selects a default scaled to the source count.
	AnnealRounds int
	// Context cancels an in-flight search cooperatively: every strategy
	// polls it between greedy steps (via Oracle.Cancelled) and stops
	// early, returning the best assignment reached so far with
	// Result.Cancelled set instead of an error. nil means
	// context.Background() — never cancelled.
	Context context.Context
	// Progress, when non-nil, receives one event after every completed
	// search step (a greedy bit move, or an annealing round). It is
	// called synchronously from the search goroutine, so it must be
	// cheap or hand off to a channel.
	Progress func(ProgressEvent)
}

// ProgressEvent reports one completed search step of a running strategy —
// the unit the service layer streams to watchers.
type ProgressEvent struct {
	// Strategy names the running search procedure.
	Strategy string
	// Step counts completed search steps, starting at 1.
	Step int
	// Cost and Power describe the incumbent assignment after the step.
	Cost  float64
	Power float64
	// Evaluations is the oracle-call count so far.
	Evaluations int
}

func (opt Options) seed() int64 {
	if opt.Seed <= 0 {
		return 1
	}
	return opt.Seed
}

// Result reports the optimized assignment.
type Result struct {
	// Strategy names the search procedure that produced the result.
	Strategy string
	// Fracs is the chosen fractional width per source name.
	Fracs map[string]int
	// Power is the evaluated output noise power of the assignment.
	Power float64
	// Cost is the weighted bit total.
	Cost float64
	// Evaluations counts oracle calls — the quantity the paper's speedup
	// multiplies.
	Evaluations int
	// UniformFrac is the smallest uniform width meeting the budget, for
	// comparison with the non-uniform assignment.
	UniformFrac int
	// UniformCost is the cost of that uniform assignment.
	UniformCost float64
	// Cancelled reports that Options.Context was cancelled before the
	// search finished: the assignment is the best one reached, not the
	// strategy's fixed point, and may not meet the budget.
	Cancelled bool
	// Degraded reports that the search was truncated by a caller deadline
	// rather than abandoned: the assignment is the best-so-far at cutoff
	// and is valid to serve, but a longer-deadlined rerun could improve on
	// it, so it must never become the request's cached canonical answer.
	// Set by the serving tier when it maps a deadline-induced cancellation
	// back onto a live job; RunStrategy itself never sets it.
	Degraded bool
}

// Oracle is the strategy-facing view of the accuracy oracle: it scores
// hypothetical width assignments against the graph under optimization,
// fanning independent candidates across the evaluator's worker pool when
// the evaluator is batch-capable, and counts every call. Strategies receive
// an Oracle from RunStrategy and must route all scoring through it so
// Result.Evaluations stays honest.
type Oracle struct {
	g           *sfg.Graph
	sources     []sfg.NodeID
	ev          core.Evaluator
	batch       core.BatchEvaluator
	mover       core.MoveEvaluator
	scorer      core.MovePowerEvaluator
	weight      func(string) float64
	evaluations int

	ctx      context.Context
	progress func(ProgressEvent)
	strategy string
	steps    int
}

func newOracle(g *sfg.Graph, opt Options) *Oracle {
	ev := opt.Evaluator
	if ev == nil {
		ev = core.NewEngine(256, opt.Workers)
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	o := &Oracle{g: g, sources: g.NoiseSources(), ev: ev, weight: weightFn(opt),
		ctx: ctx, progress: opt.Progress}
	if b, ok := ev.(core.BatchEvaluator); ok {
		o.batch = b
	}
	if m, ok := ev.(core.MoveEvaluator); ok {
		o.mover = m
	}
	if s, ok := ev.(core.MovePowerEvaluator); ok {
		o.scorer = s
	}
	return o
}

// Cancelled reports whether the run's context has been cancelled.
// Strategies poll it between search steps; once it returns true they stop
// exploring and return the best assignment reached so far.
func (o *Oracle) Cancelled() bool {
	select {
	case <-o.ctx.Done():
		return true
	default:
		return false
	}
}

// StepDone records one completed search step, describing the incumbent
// assignment, and forwards it to Options.Progress when set. Strategies
// call it once per greedy move or annealing round.
func (o *Oracle) StepDone(cost, power float64) {
	o.steps++
	if o.progress != nil {
		o.progress(ProgressEvent{
			Strategy:    o.strategy,
			Step:        o.steps,
			Cost:        cost,
			Power:       power,
			Evaluations: o.evaluations,
		})
	}
}

// Steps reports the number of completed search steps so far.
func (o *Oracle) Steps() int { return o.steps }

// Graph returns the graph under optimization. Strategies that mutate it
// (core.Assignment.Apply) own the final state: the graph is left at
// whatever assignment the strategy last applied.
func (o *Oracle) Graph() *sfg.Graph { return o.g }

// Sources lists the noise-source node IDs of the graph, in graph order.
func (o *Oracle) Sources() []sfg.NodeID { return o.sources }

// Weight returns the configured cost-per-bit weight of a source node.
func (o *Oracle) Weight(id sfg.NodeID) float64 {
	return o.weight(o.g.Node(id).Noise.Name)
}

// Cost computes the weighted bit total of an assignment.
func (o *Oracle) Cost(a core.Assignment) float64 {
	var total float64
	for _, id := range o.sources {
		total += o.Weight(id) * float64(a[id])
	}
	return total
}

// Evaluations reports the number of oracle calls so far.
func (o *Oracle) Evaluations() int { return o.evaluations }

// Powers scores assignments, in order; independent candidates fan out
// across the evaluator's worker pool when it is batch-capable. The returned
// powers are identical for every pool width.
func (o *Oracle) Powers(as []core.Assignment) ([]float64, error) {
	o.evaluations += len(as)
	return o.powersOf(as)
}

// powersOf is Powers without the oracle-call accounting.
func (o *Oracle) powersOf(as []core.Assignment) ([]float64, error) {
	out := make([]float64, len(as))
	if o.batch != nil {
		rs, err := o.batch.EvaluateBatch(o.g, as)
		if err != nil {
			return nil, err
		}
		for i, r := range rs {
			out[i] = r.Power
		}
		return out, nil
	}
	saved := core.AssignmentOf(o.g)
	defer saved.Apply(o.g)
	for i, a := range as {
		a.Apply(o.g)
		r, err := o.ev.Evaluate(o.g)
		if err != nil {
			return nil, err
		}
		out[i] = r.Power
	}
	return out, nil
}

// PowersMoves scores single-source width changes applied independently to
// base — the shape of every greedy search step. Each move counts as one
// oracle call, exactly like scoring the equivalent full assignment through
// Powers, so strategies switching between the paths keep identical
// Result.Evaluations. Scalar-capable evaluators (core.Engine) score each
// move as one σ²-table lookup plus a scalar leaf swap — O(1) per move, no
// Result materialization; move-capable evaluators take the per-bin delta
// path (whose Power fields are bit-identical to the scalar scores); other
// evaluators fall back to materializing the moved assignments, agreeing
// within the documented 1e-12 relative contract.
func (o *Oracle) PowersMoves(base core.Assignment, moves []core.Move) ([]float64, error) {
	o.evaluations += len(moves)
	if o.scorer != nil {
		return o.scorer.PowerMoves(o.g, base, moves)
	}
	if o.mover != nil {
		rs, err := o.mover.EvaluateMoves(o.g, base, moves)
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(rs))
		for i, r := range rs {
			out[i] = r.Power
		}
		return out, nil
	}
	as := make([]core.Assignment, len(moves))
	for i, mv := range moves {
		a := base.Clone()
		a[mv.Source] = mv.Frac
		as[i] = a
	}
	return o.powersOf(as)
}

// Power scores one assignment.
func (o *Oracle) Power(a core.Assignment) (float64, error) {
	ps, err := o.Powers([]core.Assignment{a})
	if err != nil {
		return 0, err
	}
	return ps[0], nil
}

// EvaluateGraph scores the graph's current widths directly through the
// underlying evaluator — used for the final reported power so that the
// result always matches an independent Evaluate of the mutated graph.
func (o *Oracle) EvaluateGraph() (float64, error) {
	o.evaluations++
	r, err := o.ev.Evaluate(o.g)
	if err != nil {
		return 0, err
	}
	return r.Power, nil
}

// ReportGraphPower is EvaluateGraph without the oracle-call accounting: it
// re-derives the power of an assignment the search loop already scored,
// in the evaluator's canonical Result derivation. Strategies that would
// otherwise report a raw move score use it so the reported power always
// matches an independent Evaluate of the mutated graph bit-for-bit — the
// scalar move scores agree with that derivation within 1e-12 relative but
// not bitwise — without inflating Result.Evaluations for a call that made
// no search decision. Descent, hybrid and anneal keep their historical
// *counted* EvaluateGraph for the same report: their final call predates
// the scalar tier and is pinned by the oracle-call goldens, so switching
// them would silently change every recorded Evaluations figure.
func (o *Oracle) ReportGraphPower() (float64, error) {
	r, err := o.ev.Evaluate(o.g)
	if err != nil {
		return 0, err
	}
	return r.Power, nil
}

// requireFeasible errors unless the all-MaxFrac assignment meets the
// budget — the shared precondition of every search direction.
func (o *Oracle) requireFeasible(opt Options) error {
	p, err := o.Power(core.UniformAssignment(o.sources, opt.MaxFrac))
	if err != nil {
		return err
	}
	if p > opt.Budget {
		return fmt.Errorf("wlopt: budget %g unreachable even at %d fractional bits (power %g)",
			opt.Budget, opt.MaxFrac, p)
	}
	return nil
}

// fillFromGraph records the graph's current source widths and their
// weighted cost into res.
func (o *Oracle) fillFromGraph(res *Result) {
	for _, id := range o.sources {
		n := o.g.Node(id)
		res.Fracs[n.Noise.Name] = n.Noise.Frac
		res.Cost += o.weight(n.Noise.Name) * float64(n.Noise.Frac)
	}
}

// fillUniform records the uniform-baseline comparison columns into res.
func (o *Oracle) fillUniform(res *Result, frac int) {
	res.UniformFrac = frac
	for _, id := range o.sources {
		res.UniformCost += o.Weight(id) * float64(frac)
	}
}

func checkOptions(opt Options) error {
	if opt.Budget <= 0 {
		return fmt.Errorf("wlopt: budget %g must be positive", opt.Budget)
	}
	if opt.MinFrac < 1 || opt.MaxFrac < opt.MinFrac || opt.MaxFrac > 48 {
		return fmt.Errorf("wlopt: bad width bounds [%d, %d]", opt.MinFrac, opt.MaxFrac)
	}
	return nil
}

func weightFn(opt Options) func(string) float64 {
	return func(name string) float64 {
		if opt.CostPerBit == nil {
			return 1
		}
		if w, ok := opt.CostPerBit[name]; ok {
			return w
		}
		return 1
	}
}

// UniformBaseline finds the smallest uniform width meeting the budget,
// scanning downward from MaxFrac-1 and stopping at the first infeasible
// width like the serial scan — but scoring a small chunk of widths per
// oracle round so the batch evaluator can overlap them. The chunk size is
// fixed, so the oracle-call count does not depend on Options.Workers.
func UniformBaseline(o *Oracle, opt Options) (int, error) {
	const chunk = 4
	best := opt.MaxFrac
	for hi := opt.MaxFrac - 1; hi >= opt.MinFrac; hi -= chunk {
		if o.Cancelled() {
			return best, nil
		}
		var widths []core.Assignment
		for f := hi; f >= opt.MinFrac && f > hi-chunk; f-- {
			widths = append(widths, core.UniformAssignment(o.sources, f))
		}
		ps, err := o.Powers(widths)
		if err != nil {
			return 0, err
		}
		for i, p := range ps { // widths[i] is hi-i
			if p > opt.Budget {
				return best, nil
			}
			best = hi - i
		}
	}
	return best, nil
}
