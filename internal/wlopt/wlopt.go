// Package wlopt implements the application that motivates the paper: the
// fixed-point refinement loop. A word-length optimizer assigns fractional
// bits to every quantization-noise source so that the output noise power
// meets a budget at minimum hardware cost, using one of the analytical
// evaluators from package core as its accuracy oracle. Because the greedy
// search evaluates the system hundreds of times, the 3-5 orders of
// magnitude between analytical estimation and Monte-Carlo simulation
// (Fig. 6) is the difference between milliseconds and days — and because
// the candidate moves of one greedy step are independent, they are scored
// concurrently through core.BatchEvaluator when the oracle supports it.
package wlopt

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sfg"
)

// Options configures the optimization.
type Options struct {
	// Budget is the maximum acceptable output noise power.
	Budget float64
	// MinFrac / MaxFrac bound every source's fractional width.
	MinFrac, MaxFrac int
	// CostPerBit weights each source's width in the cost function; nil
	// means unit weight (cost = total fractional bits). Keys are source
	// names.
	CostPerBit map[string]float64
	// Evaluator is the accuracy oracle; nil selects the proposed PSD
	// method with 256 bins, plan-cached and batch-parallel (core.Engine).
	Evaluator core.Evaluator
	// Workers bounds the number of concurrent candidate evaluations per
	// greedy step when the default engine is used; <= 0 selects
	// runtime.GOMAXPROCS(0). The optimization result is identical for
	// every Workers value — only wall-clock time changes. A caller-
	// provided Evaluator manages its own parallelism (batch-capable
	// evaluators are fanned out; plain evaluators run serially).
	Workers int
}

// Result reports the optimized assignment.
type Result struct {
	// Fracs is the chosen fractional width per source name.
	Fracs map[string]int
	// Power is the evaluated output noise power of the assignment.
	Power float64
	// Cost is the weighted bit total.
	Cost float64
	// Evaluations counts oracle calls — the quantity the paper's speedup
	// multiplies.
	Evaluations int
	// UniformFrac is the smallest uniform width meeting the budget, for
	// comparison with the non-uniform assignment.
	UniformFrac int
	// UniformCost is the cost of that uniform assignment.
	UniformCost float64
}

// oracle adapts the configured Evaluator to assignment-based scoring: a
// batch-capable evaluator scores hypothetical assignments without touching
// the graph (and in parallel); a plain evaluator falls back to serial
// mutate-evaluate-restore.
type oracle struct {
	g           *sfg.Graph
	ev          core.Evaluator
	batch       core.BatchEvaluator
	evaluations int
}

func newOracle(g *sfg.Graph, opt Options) *oracle {
	ev := opt.Evaluator
	if ev == nil {
		ev = core.NewEngine(256, opt.Workers)
	}
	o := &oracle{g: g, ev: ev}
	if b, ok := ev.(core.BatchEvaluator); ok {
		o.batch = b
	}
	return o
}

// powers scores assignments, in order; independent candidates fan out
// across the evaluator's worker pool when it is batch-capable.
func (o *oracle) powers(as []core.Assignment) ([]float64, error) {
	o.evaluations += len(as)
	out := make([]float64, len(as))
	if o.batch != nil {
		rs, err := o.batch.EvaluateBatch(o.g, as)
		if err != nil {
			return nil, err
		}
		for i, r := range rs {
			out[i] = r.Power
		}
		return out, nil
	}
	saved := core.AssignmentOf(o.g)
	defer saved.Apply(o.g)
	for i, a := range as {
		a.Apply(o.g)
		r, err := o.ev.Evaluate(o.g)
		if err != nil {
			return nil, err
		}
		out[i] = r.Power
	}
	return out, nil
}

// power scores one assignment.
func (o *oracle) power(a core.Assignment) (float64, error) {
	ps, err := o.powers([]core.Assignment{a})
	if err != nil {
		return 0, err
	}
	return ps[0], nil
}

// evaluateGraph scores the graph's current widths directly through the
// underlying evaluator — used for the final reported power so that the
// result always matches an independent Evaluate of the mutated graph.
func (o *oracle) evaluateGraph() (float64, error) {
	o.evaluations++
	r, err := o.ev.Evaluate(o.g)
	if err != nil {
		return 0, err
	}
	return r.Power, nil
}

func checkOptions(opt Options) error {
	if opt.Budget <= 0 {
		return fmt.Errorf("wlopt: budget %g must be positive", opt.Budget)
	}
	if opt.MinFrac < 1 || opt.MaxFrac < opt.MinFrac || opt.MaxFrac > 48 {
		return fmt.Errorf("wlopt: bad width bounds [%d, %d]", opt.MinFrac, opt.MaxFrac)
	}
	return nil
}

func weightFn(opt Options) func(string) float64 {
	return func(name string) float64 {
		if opt.CostPerBit == nil {
			return 1
		}
		if w, ok := opt.CostPerBit[name]; ok {
			return w
		}
		return 1
	}
}

// uniformBaseline finds the smallest uniform width meeting the budget,
// scanning downward from MaxFrac-1 and stopping at the first infeasible
// width like the serial scan — but scoring a small chunk of widths per
// oracle round so the batch evaluator can overlap them. The chunk size is
// fixed, so the oracle-call count does not depend on Options.Workers.
func uniformBaseline(orc *oracle, sources []sfg.NodeID, opt Options) (int, error) {
	const chunk = 4
	best := opt.MaxFrac
	for hi := opt.MaxFrac - 1; hi >= opt.MinFrac; hi -= chunk {
		var widths []core.Assignment
		for f := hi; f >= opt.MinFrac && f > hi-chunk; f-- {
			widths = append(widths, core.UniformAssignment(sources, f))
		}
		ps, err := orc.powers(widths)
		if err != nil {
			return 0, err
		}
		for i, p := range ps { // widths[i] is hi-i
			if p > opt.Budget {
				return best, nil
			}
			best = hi - i
		}
	}
	return best, nil
}

// Optimize runs a greedy max-minus-one descent: starting from MaxFrac
// everywhere (which must meet the budget), it repeatedly removes one bit
// from the source whose removal keeps the budget satisfied while freeing
// the most cost, until no single-bit removal is feasible. All candidate
// removals of one step are scored concurrently (see Options.Workers). The
// graph's source widths are left at the optimized assignment.
func Optimize(g *sfg.Graph, opt Options) (*Result, error) {
	if err := checkOptions(opt); err != nil {
		return nil, err
	}
	sources := g.NoiseSources()
	if len(sources) == 0 {
		return nil, fmt.Errorf("wlopt: graph has no noise sources")
	}
	orc := newOracle(g, opt)
	weight := weightFn(opt)
	res := &Result{Fracs: map[string]int{}}

	// Feasibility at MaxFrac.
	p, err := orc.power(core.UniformAssignment(sources, opt.MaxFrac))
	if err != nil {
		return nil, err
	}
	if p > opt.Budget {
		return nil, fmt.Errorf("wlopt: budget %g unreachable even at %d fractional bits (power %g)",
			opt.Budget, opt.MaxFrac, p)
	}

	// Uniform baseline: smallest uniform width meeting the budget.
	res.UniformFrac, err = uniformBaseline(orc, sources, opt)
	if err != nil {
		return nil, err
	}
	for _, id := range sources {
		res.UniformCost += weight(g.Node(id).Noise.Name) * float64(res.UniformFrac)
	}

	// Greedy descent from MaxFrac. Every step scores all single-bit
	// removals as one batch of independent assignments.
	cur := core.UniformAssignment(sources, opt.MaxFrac)
	for {
		type cand struct {
			id    sfg.NodeID
			a     core.Assignment
			power float64
			gain  float64
		}
		var cands []cand
		var batch []core.Assignment
		for _, id := range sources {
			if cur[id] <= opt.MinFrac {
				continue
			}
			a := cur.Clone()
			a[id]--
			cands = append(cands, cand{id: id, a: a, gain: weight(g.Node(id).Noise.Name)})
			batch = append(batch, a)
		}
		if len(cands) == 0 {
			break
		}
		ps, err := orc.powers(batch)
		if err != nil {
			return nil, err
		}
		feasible := cands[:0]
		for i := range cands {
			cands[i].power = ps[i]
			if ps[i] <= opt.Budget {
				feasible = append(feasible, cands[i])
			}
		}
		if len(feasible) == 0 {
			break
		}
		// Prefer the largest cost gain; break ties toward the smallest
		// resulting power (keeps slack for later removals). The stable
		// sort keeps source order as the final tie-break, so the outcome
		// is deterministic for any worker count.
		sort.SliceStable(feasible, func(i, j int) bool {
			if feasible[i].gain != feasible[j].gain {
				return feasible[i].gain > feasible[j].gain
			}
			return feasible[i].power < feasible[j].power
		})
		cur = feasible[0].a
	}

	cur.Apply(g)
	final, err := orc.evaluateGraph()
	if err != nil {
		return nil, err
	}
	res.Power = final
	res.Evaluations = orc.evaluations
	for _, id := range sources {
		n := g.Node(id)
		res.Fracs[n.Noise.Name] = n.Noise.Frac
		res.Cost += weight(n.Noise.Name) * float64(n.Noise.Frac)
	}
	return res, nil
}
