package wlopt

import (
	"sort"

	"repro/internal/core"
	"repro/internal/sfg"
)

// descentStrategy is the greedy max-minus-one descent: starting from
// MaxFrac everywhere (which must meet the budget), it repeatedly removes
// one bit from the source whose removal keeps the budget satisfied while
// freeing the most cost, until no single-bit removal is feasible.
type descentStrategy struct{}

// Name implements Strategy.
func (descentStrategy) Name() string { return "descent" }

// Run implements Strategy. All candidate removals of one step are scored
// concurrently (see Options.Workers).
func (descentStrategy) Run(o *Oracle, opt Options) (*Result, error) {
	res := &Result{Fracs: map[string]int{}}
	if err := o.requireFeasible(opt); err != nil {
		return nil, err
	}

	// Uniform baseline: smallest uniform width meeting the budget.
	ufrac, err := UniformBaseline(o, opt)
	if err != nil {
		return nil, err
	}
	o.fillUniform(res, ufrac)

	// Greedy descent from MaxFrac.
	cur, err := trim(o, opt, core.UniformAssignment(o.Sources(), opt.MaxFrac))
	if err != nil {
		return nil, err
	}

	cur.Apply(o.Graph())
	final, err := o.EvaluateGraph()
	if err != nil {
		return nil, err
	}
	res.Power = final
	res.Evaluations = o.Evaluations()
	o.fillFromGraph(res)
	return res, nil
}

// trim runs the greedy bit-removal loop from cur: every step scores all
// feasible single-bit removals as one oracle round of Moves against the
// incumbent — the scalar tier on capable evaluators — and takes the one
// freeing the most cost, until no removal stays under the budget (or the
// run is cancelled, in which case the incumbent is returned as is). It is
// the whole of the descent strategy and the second phase of the hybrid
// strategy.
//
// Feasibility decisions compare scalar move scores against the budget;
// the final reported power is the canonical graph evaluation, which
// agrees with those scores within 1e-12 relative. A budget placed within
// that sliver of an achievable power can therefore report marginally over
// budget — callers needing a hard guarantee should pad the budget by a
// part in 1e12.
func trim(o *Oracle, opt Options, cur core.Assignment) (core.Assignment, error) {
	type cand struct {
		id    sfg.NodeID
		power float64
		gain  float64
	}
	// The incumbent is owned by the loop (callers hand over a fresh
	// assignment and use only the returned one), so each accepted removal
	// mutates it in place, and the per-step candidate buffers are reused
	// across steps — the greedy loop allocates nothing per step beyond
	// the oracle round itself.
	cands := make([]cand, 0, len(o.Sources()))
	moves := make([]core.Move, 0, len(o.Sources()))
	for !o.Cancelled() {
		cands, moves = cands[:0], moves[:0]
		for _, id := range o.Sources() {
			if cur[id] <= opt.MinFrac {
				continue
			}
			cands = append(cands, cand{id: id, gain: o.Weight(id)})
			moves = append(moves, core.Move{Source: id, Frac: cur[id] - 1})
		}
		if len(cands) == 0 {
			break
		}
		ps, err := o.PowersMoves(cur, moves)
		if err != nil {
			return nil, err
		}
		feasible := cands[:0]
		for i := range cands {
			cands[i].power = ps[i]
			if ps[i] <= opt.Budget {
				feasible = append(feasible, cands[i])
			}
		}
		if len(feasible) == 0 {
			break
		}
		// Prefer the largest cost gain; break ties toward the smallest
		// resulting power (keeps slack for later removals). The stable
		// sort keeps source order as the final tie-break, so the outcome
		// is deterministic for any worker count.
		sort.SliceStable(feasible, func(i, j int) bool {
			if feasible[i].gain != feasible[j].gain {
				return feasible[i].gain > feasible[j].gain
			}
			return feasible[i].power < feasible[j].power
		})
		cur[feasible[0].id]--
		o.StepDone(o.Cost(cur), feasible[0].power)
	}
	return cur, nil
}

// Optimize runs the "descent" strategy — the greedy max-minus-one search.
// The graph's source widths are left at the optimized assignment. It is a
// thin wrapper over RunStrategy, kept for the callers that predate the
// strategy registry.
func Optimize(g *sfg.Graph, opt Options) (*Result, error) {
	return RunStrategy(g, "descent", opt)
}
