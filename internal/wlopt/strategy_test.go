package wlopt

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sfg"
	"repro/internal/systems"
)

// golden results captured by running the pre-refactor Optimize /
// OptimizeAscent (commit 7255fe7) on the same graphs and options. The
// strategy refactor must reproduce them exactly — assignment, power, cost,
// baseline, and oracle-call count.
type golden struct {
	fracs       map[string]int
	power       float64
	cost        float64
	uniformFrac int
	uniformCost float64
	evaluations int
}

var preRefactorGoldens = map[string]golden{
	"descent/two-stage": {
		fracs: map[string]int{"in": 4, "lp": 12, "hp": 12},
		power: 6.8885255145050188e-09, cost: 28,
		uniformFrac: 12, uniformCost: 36, evaluations: 145,
	},
	"ascent/two-stage": {
		fracs: map[string]int{"in": 4, "lp": 12, "hp": 12},
		power: 6.8885255145050188e-09, cost: 28,
		uniformFrac: 12, uniformCost: 36, evaluations: 66,
	},
	"descent/dwt": {
		fracs: map[string]int{
			"xin.q": 12, "lpd.l1": 12, "hpd.l1": 12, "lpc.l1": 12, "hpc.l1": 11,
			"lpd.l2": 11, "hpd.l2": 11, "lpc.l2": 12, "hpc.l2": 10,
		},
		power: 8.8466145447346623e-08, cost: 103,
		uniformFrac: 12, uniformCost: 108, evaluations: 716,
	},
	"ascent/dwt": {
		fracs: map[string]int{
			"xin.q": 12, "lpd.l1": 12, "hpd.l1": 12, "lpc.l1": 12, "hpc.l1": 11,
			"lpd.l2": 11, "hpd.l2": 11, "lpc.l2": 12, "hpc.l2": 10,
		},
		power: 8.8466145447346623e-08, cost: 103,
		uniformFrac: 12, uniformCost: 108, evaluations: 617,
	},
}

func goldenGraph(t *testing.T, which string) (*sfg.Graph, Options) {
	t.Helper()
	switch which {
	case "two-stage":
		return buildTwoStage(t), Options{Budget: 1e-8, MinFrac: 4, MaxFrac: 24}
	case "dwt":
		g, err := systems.NewDWT().Graph(20)
		if err != nil {
			t.Fatal(err)
		}
		return g, Options{Budget: 1e-7, MinFrac: 4, MaxFrac: 20}
	}
	t.Fatalf("unknown graph %q", which)
	return nil, Options{}
}

// TestStrategiesReproducePreRefactorResults pins the refactored "descent"
// and "ascent" strategies — through both the wrapper entry points and
// RunStrategy — to the exact outputs the monolithic Optimize /
// OptimizeAscent produced before the strategy interface existed.
func TestStrategiesReproducePreRefactorResults(t *testing.T) {
	for key, want := range preRefactorGoldens {
		parts := strings.SplitN(key, "/", 2)
		strategy, graph := parts[0], parts[1]
		for _, entry := range []string{"wrapper", "registry"} {
			g, opt := goldenGraph(t, graph)
			var res *Result
			var err error
			switch {
			case entry == "registry":
				res, err = RunStrategy(g, strategy, opt)
			case strategy == "descent":
				res, err = Optimize(g, opt)
			default:
				res, err = OptimizeAscent(g, opt)
			}
			if err != nil {
				t.Fatalf("%s via %s: %v", key, entry, err)
			}
			if res.Strategy != strategy {
				t.Errorf("%s via %s: Strategy = %q", key, entry, res.Strategy)
			}
			if !reflect.DeepEqual(res.Fracs, want.fracs) {
				t.Errorf("%s via %s: fracs %v, pre-refactor %v", key, entry, res.Fracs, want.fracs)
			}
			if res.Power != want.power {
				t.Errorf("%s via %s: power %.17g, pre-refactor %.17g", key, entry, res.Power, want.power)
			}
			if res.Cost != want.cost || res.UniformFrac != want.uniformFrac || res.UniformCost != want.uniformCost {
				t.Errorf("%s via %s: cost %g/%d/%g, pre-refactor %g/%d/%g", key, entry,
					res.Cost, res.UniformFrac, res.UniformCost, want.cost, want.uniformFrac, want.uniformCost)
			}
			if res.Evaluations != want.evaluations {
				t.Errorf("%s via %s: %d oracle calls, pre-refactor %d", key, entry, res.Evaluations, want.evaluations)
			}
		}
	}
}

// TestBuiltinStrategiesRegistered: the four built-ins are registered in
// canonical order, and lookups resolve them.
func TestBuiltinStrategiesRegistered(t *testing.T) {
	names := Strategies()
	want := []string{"descent", "ascent", "hybrid", "anneal"}
	if len(names) < len(want) {
		t.Fatalf("registered strategies %v, want at least %v", names, want)
	}
	if !reflect.DeepEqual(names[:4], want) {
		t.Fatalf("built-in order %v, want %v", names[:4], want)
	}
	for _, n := range want {
		s, ok := Lookup(n)
		if !ok || s.Name() != n {
			t.Fatalf("Lookup(%q) = %v, %v", n, s, ok)
		}
	}
	if _, ok := Lookup("no-such-strategy"); ok {
		t.Fatal("Lookup of unregistered name succeeded")
	}
}

func TestRunStrategyUnknownName(t *testing.T) {
	g := buildTwoStage(t)
	_, err := RunStrategy(g, "no-such-strategy", Options{Budget: 1e-8, MinFrac: 4, MaxFrac: 24})
	if err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Fatalf("expected unknown-strategy error, got %v", err)
	}
}

// TestEveryStrategyMeetsBudget: every registered strategy returns a
// feasible assignment whose cost is no worse than the uniform baseline,
// with the graph left in the reported state.
func TestEveryStrategyMeetsBudget(t *testing.T) {
	for _, name := range Strategies() {
		for _, graph := range []string{"two-stage", "dwt"} {
			g, opt := goldenGraph(t, graph)
			res, err := RunStrategy(g, name, opt)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, graph, err)
			}
			if res.Power > opt.Budget {
				t.Errorf("%s on %s: power %g over budget %g", name, graph, res.Power, opt.Budget)
			}
			if res.Cost > res.UniformCost {
				t.Errorf("%s on %s: cost %g worse than uniform %g", name, graph, res.Cost, res.UniformCost)
			}
			for src, f := range res.Fracs {
				if f < opt.MinFrac || f > opt.MaxFrac {
					t.Errorf("%s on %s: %s width %d outside [%d, %d]", name, graph, src, f, opt.MinFrac, opt.MaxFrac)
				}
			}
		}
	}
}

// TestHybridNoWorseThanAscent: the trim phase can only remove bits, so the
// hybrid result must cost at most the ascent result on the same problem.
func TestHybridNoWorseThanAscent(t *testing.T) {
	for _, graph := range []string{"two-stage", "dwt"} {
		ga, opt := goldenGraph(t, graph)
		asc, err := RunStrategy(ga, "ascent", opt)
		if err != nil {
			t.Fatal(err)
		}
		gh, _ := goldenGraph(t, graph)
		hyb, err := RunStrategy(gh, "hybrid", opt)
		if err != nil {
			t.Fatal(err)
		}
		if hyb.Cost > asc.Cost {
			t.Errorf("%s: hybrid cost %g exceeds ascent cost %g", graph, hyb.Cost, asc.Cost)
		}
	}
}

// TestAnnealDeterminism: a fixed seed must give an identical result at any
// worker-pool width, and repeated runs at the same width must agree.
func TestAnnealDeterminism(t *testing.T) {
	var ref *Result
	for _, workers := range []int{1, 1, 2, 8} {
		g, opt := goldenGraph(t, "dwt")
		opt.Workers = workers
		opt.Seed = 42
		res, err := RunStrategy(g, "anneal", opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Fracs, ref.Fracs) {
			t.Fatalf("workers=%d: fracs %v diverge from workers=1 %v", workers, res.Fracs, ref.Fracs)
		}
		if res.Power != ref.Power || res.Cost != ref.Cost || res.Evaluations != ref.Evaluations {
			t.Fatalf("workers=%d: result %+v diverges from %+v", workers, res, ref)
		}
	}
}

// TestAnnealSeedDefaultsAndVariation: Seed <= 0 behaves as Seed 1, and the
// evaluation count is seed-independent (rounds and proposal sizes are
// fixed; only which moves are proposed varies).
func TestAnnealSeedDefaultsAndVariation(t *testing.T) {
	run := func(seed int64) *Result {
		g, opt := goldenGraph(t, "two-stage")
		opt.Seed = seed
		res, err := RunStrategy(g, "anneal", opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	zero, one := run(0), run(1)
	if !reflect.DeepEqual(zero.Fracs, one.Fracs) || zero.Power != one.Power {
		t.Fatalf("Seed 0 result %+v differs from Seed 1 %+v", zero, one)
	}
	if other := run(7); other.Evaluations != one.Evaluations {
		t.Fatalf("oracle-call count depends on seed: %d vs %d", other.Evaluations, one.Evaluations)
	}
}

// TestDegenerateWidthRange: MinFrac == MaxFrac passes validation, so every
// strategy must return the only possible assignment without stepping
// outside the bounds (the anneal proposal fallback once could).
func TestDegenerateWidthRange(t *testing.T) {
	for _, name := range Strategies() {
		g := buildTwoStage(t)
		res, err := RunStrategy(g, name, Options{Budget: 1e-3, MinFrac: 12, MaxFrac: 12})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for src, f := range res.Fracs {
			if f != 12 {
				t.Errorf("%s: %s width %d, want 12", name, src, f)
			}
		}
	}
}
