package wlopt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sfg"
)

// ascentStrategy is the dual greedy — the classical "min + 1 bit" ascent:
// every source starts at MinFrac and the algorithm repeatedly adds one bit
// to the source whose increment reduces the output noise the most per unit
// cost, until the budget is met. Ascent tends to need fewer oracle calls
// than descent when the answer sits near the bottom of the range; descent
// finds slightly cheaper assignments when most sources need to stay wide.
type ascentStrategy struct{}

// Name implements Strategy.
func (ascentStrategy) Name() string { return "ascent" }

// Run implements Strategy. All candidate increments of one step are scored
// concurrently (see Options.Workers).
func (ascentStrategy) Run(o *Oracle, opt Options) (*Result, error) {
	res := &Result{Fracs: map[string]int{}}
	if err := o.requireFeasible(opt); err != nil {
		return nil, err
	}

	// Ascent from the bottom.
	cur := core.UniformAssignment(o.Sources(), opt.MinFrac)
	power, err := o.Power(cur)
	if err != nil {
		return nil, err
	}
	cur, _, err = climb(o, opt, cur, power)
	if err != nil {
		return nil, err
	}
	cur.Apply(o.Graph())
	// The climb searched on scalar move scores; report the final power in
	// the canonical Result derivation (uncounted — no new decision made),
	// so the result matches an independent Evaluate of the graph exactly.
	final, err := o.ReportGraphPower()
	if err != nil {
		return nil, err
	}
	res.Power = final
	o.fillFromGraph(res)

	// Uniform baseline for comparison.
	ufrac, err := UniformBaseline(o, opt)
	if err != nil {
		return nil, err
	}
	o.fillUniform(res, ufrac)
	res.Evaluations = o.Evaluations()
	return res, nil
}

// climb runs the greedy bit-addition loop from cur (whose power is the
// second argument) until the budget is met, scoring every step's candidate
// increments as one oracle round of Moves against the incumbent — the
// delta path on move-capable evaluators. It returns the first feasible
// assignment and its power. A cancelled run returns the incumbent even
// though it is still over budget — the caller reports it with the
// Cancelled flag. It is the core of the ascent strategy and the first
// phase of the hybrid strategy.
func climb(o *Oracle, opt Options, cur core.Assignment, power float64) (core.Assignment, float64, error) {
	type cand struct {
		id    sfg.NodeID
		power float64
		score float64 // noise reduction per unit cost
	}
	// The incumbent is owned by the loop (callers hand over a fresh
	// assignment and use only the returned one), so accepted increments
	// mutate it in place and the candidate buffers are reused across
	// steps — no per-step allocation beyond the oracle round.
	cands := make([]cand, 0, len(o.Sources()))
	moves := make([]core.Move, 0, len(o.Sources()))
	for power > opt.Budget && !o.Cancelled() {
		cands, moves = cands[:0], moves[:0]
		for _, id := range o.Sources() {
			if cur[id] >= opt.MaxFrac {
				continue
			}
			cands = append(cands, cand{id: id})
			moves = append(moves, core.Move{Source: id, Frac: cur[id] + 1})
		}
		if len(cands) == 0 {
			return nil, 0, fmt.Errorf("wlopt: ascent stuck above budget (power %g > %g)", power, opt.Budget)
		}
		ps, err := o.PowersMoves(cur, moves)
		if err != nil {
			return nil, 0, err
		}
		best := cand{score: math.Inf(-1)}
		found := false
		for i := range cands {
			cands[i].power = ps[i]
			cands[i].score = (power - ps[i]) / o.Weight(cands[i].id)
			// Strict > keeps the first best in source order, matching the
			// serial scan for any worker count.
			if cands[i].score > best.score {
				best = cands[i]
				found = true
			}
		}
		if !found {
			return nil, 0, fmt.Errorf("wlopt: ascent stuck above budget (power %g > %g)", power, opt.Budget)
		}
		cur[best.id]++
		power = best.power
		o.StepDone(o.Cost(cur), power)
	}
	return cur, power, nil
}

// OptimizeAscent runs the "ascent" strategy — the classical min-plus-one
// search. The graph's source widths are left at the result. It is a thin
// wrapper over RunStrategy, kept for the callers that predate the strategy
// registry.
func OptimizeAscent(g *sfg.Graph, opt Options) (*Result, error) {
	return RunStrategy(g, "ascent", opt)
}
