package wlopt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/sfg"
)

// OptimizeAscent runs the dual greedy — the classical "min + 1 bit"
// ascent: every source starts at MinFrac and the algorithm repeatedly adds
// one bit to the source whose increment reduces the output noise the most
// per unit cost, until the budget is met. Ascent tends to need fewer oracle
// calls than descent when the answer sits near the bottom of the range;
// descent (Optimize) finds slightly cheaper assignments when most sources
// need to stay wide. The graph's source widths are left at the result.
func OptimizeAscent(g *sfg.Graph, opt Options) (*Result, error) {
	if opt.Budget <= 0 {
		return nil, fmt.Errorf("wlopt: budget %g must be positive", opt.Budget)
	}
	if opt.MinFrac < 1 || opt.MaxFrac < opt.MinFrac || opt.MaxFrac > 48 {
		return nil, fmt.Errorf("wlopt: bad width bounds [%d, %d]", opt.MinFrac, opt.MaxFrac)
	}
	ev := opt.Evaluator
	if ev == nil {
		ev = core.NewPSDEvaluator(256)
	}
	sources := g.NoiseSources()
	if len(sources) == 0 {
		return nil, fmt.Errorf("wlopt: graph has no noise sources")
	}
	res := &Result{Fracs: map[string]int{}}
	weight := func(name string) float64 {
		if opt.CostPerBit == nil {
			return 1
		}
		if w, ok := opt.CostPerBit[name]; ok {
			return w
		}
		return 1
	}
	evaluate := func() (float64, error) {
		res.Evaluations++
		r, err := ev.Evaluate(g)
		if err != nil {
			return 0, err
		}
		return r.Power, nil
	}
	// Feasibility check at the top of the range.
	for _, id := range sources {
		g.Node(id).Noise.Frac = opt.MaxFrac
	}
	if p, err := evaluate(); err != nil {
		return nil, err
	} else if p > opt.Budget {
		return nil, fmt.Errorf("wlopt: budget %g unreachable even at %d fractional bits (power %g)",
			opt.Budget, opt.MaxFrac, p)
	}
	// Ascent from the bottom.
	for _, id := range sources {
		g.Node(id).Noise.Frac = opt.MinFrac
	}
	power, err := evaluate()
	if err != nil {
		return nil, err
	}
	for power > opt.Budget {
		type cand struct {
			id    sfg.NodeID
			power float64
			score float64 // noise reduction per unit cost
		}
		best := cand{score: math.Inf(-1)}
		found := false
		for _, id := range sources {
			n := g.Node(id)
			if n.Noise.Frac >= opt.MaxFrac {
				continue
			}
			n.Noise.Frac++
			p, err := evaluate()
			n.Noise.Frac--
			if err != nil {
				return nil, err
			}
			score := (power - p) / weight(n.Noise.Name)
			if score > best.score {
				best = cand{id: id, power: p, score: score}
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("wlopt: ascent stuck above budget (power %g > %g)", power, opt.Budget)
		}
		g.Node(best.id).Noise.Frac++
		power = best.power
	}
	res.Power = power
	for _, id := range sources {
		n := g.Node(id)
		res.Fracs[n.Noise.Name] = n.Noise.Frac
		res.Cost += weight(n.Noise.Name) * float64(n.Noise.Frac)
	}
	// Uniform baseline for comparison (shared logic with descent would
	// re-evaluate anyway; keep it simple and direct).
	names := make([]string, 0, len(sources))
	for _, id := range sources {
		names = append(names, g.Node(id).Noise.Name)
	}
	sort.Strings(names)
	saveFracs := map[string]int{}
	for _, id := range sources {
		saveFracs[g.Node(id).Noise.Name] = g.Node(id).Noise.Frac
	}
	res.UniformFrac = opt.MaxFrac
	for f := opt.MaxFrac; f >= opt.MinFrac; f-- {
		for _, id := range sources {
			g.Node(id).Noise.Frac = f
		}
		p, err := evaluate()
		if err != nil {
			return nil, err
		}
		if p > opt.Budget {
			break
		}
		res.UniformFrac = f
	}
	for _, name := range names {
		res.UniformCost += weight(name) * float64(res.UniformFrac)
	}
	// Restore the optimized assignment.
	for _, id := range sources {
		g.Node(id).Noise.Frac = saveFracs[g.Node(id).Noise.Name]
	}
	return res, nil
}
