package wlopt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sfg"
)

// OptimizeAscent runs the dual greedy — the classical "min + 1 bit"
// ascent: every source starts at MinFrac and the algorithm repeatedly adds
// one bit to the source whose increment reduces the output noise the most
// per unit cost, until the budget is met. All candidate increments of one
// step are scored concurrently (see Options.Workers). Ascent tends to need
// fewer oracle calls than descent when the answer sits near the bottom of
// the range; descent (Optimize) finds slightly cheaper assignments when
// most sources need to stay wide. The graph's source widths are left at
// the result.
func OptimizeAscent(g *sfg.Graph, opt Options) (*Result, error) {
	if err := checkOptions(opt); err != nil {
		return nil, err
	}
	sources := g.NoiseSources()
	if len(sources) == 0 {
		return nil, fmt.Errorf("wlopt: graph has no noise sources")
	}
	orc := newOracle(g, opt)
	weight := weightFn(opt)
	res := &Result{Fracs: map[string]int{}}

	// Feasibility check at the top of the range.
	if p, err := orc.power(core.UniformAssignment(sources, opt.MaxFrac)); err != nil {
		return nil, err
	} else if p > opt.Budget {
		return nil, fmt.Errorf("wlopt: budget %g unreachable even at %d fractional bits (power %g)",
			opt.Budget, opt.MaxFrac, p)
	}

	// Ascent from the bottom.
	cur := core.UniformAssignment(sources, opt.MinFrac)
	power, err := orc.power(cur)
	if err != nil {
		return nil, err
	}
	for power > opt.Budget {
		type cand struct {
			id    sfg.NodeID
			a     core.Assignment
			power float64
			score float64 // noise reduction per unit cost
		}
		var cands []cand
		var batch []core.Assignment
		for _, id := range sources {
			if cur[id] >= opt.MaxFrac {
				continue
			}
			a := cur.Clone()
			a[id]++
			cands = append(cands, cand{id: id, a: a})
			batch = append(batch, a)
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("wlopt: ascent stuck above budget (power %g > %g)", power, opt.Budget)
		}
		ps, err := orc.powers(batch)
		if err != nil {
			return nil, err
		}
		best := cand{score: math.Inf(-1)}
		found := false
		for i := range cands {
			cands[i].power = ps[i]
			cands[i].score = (power - ps[i]) / weight(g.Node(cands[i].id).Noise.Name)
			// Strict > keeps the first best in source order, matching the
			// serial scan for any worker count.
			if cands[i].score > best.score {
				best = cands[i]
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("wlopt: ascent stuck above budget (power %g > %g)", power, opt.Budget)
		}
		cur = best.a
		power = best.power
	}
	res.Power = power
	cur.Apply(g)
	for _, id := range sources {
		n := g.Node(id)
		res.Fracs[n.Noise.Name] = n.Noise.Frac
		res.Cost += weight(n.Noise.Name) * float64(n.Noise.Frac)
	}

	// Uniform baseline for comparison.
	res.UniformFrac, err = uniformBaseline(orc, sources, opt)
	if err != nil {
		return nil, err
	}
	for _, id := range sources {
		res.UniformCost += weight(g.Node(id).Noise.Name) * float64(res.UniformFrac)
	}
	res.Evaluations = orc.evaluations
	return res, nil
}
