package wlopt

import (
	"math"
	"math/rand"

	"repro/internal/core"
)

// annealStrategy is a simulated-annealing search over the feasible region:
// it starts from the smallest feasible uniform assignment and proposes
// random single-bit moves, accepting cost increases with the Metropolis
// probability under a geometrically cooling temperature, and reports the
// cheapest feasible assignment seen. Each round's proposals are scored as
// one oracle batch, so they fan out across the worker pool; all randomness
// comes from a rand.Rand seeded with Options.Seed and is drawn in an order
// independent of the pool width, so a fixed seed gives an identical result
// at every Options.Workers value.
//
// Annealing exists for the cost landscapes the greedy directions handle
// badly: strongly weighted CostPerBit maps and graphs whose sources
// interact, where a locally-worst single move enables a globally cheaper
// assignment. On separable problems it matches greedy at a higher oracle
// budget.
type annealStrategy struct{}

// Name implements Strategy.
func (annealStrategy) Name() string { return "anneal" }

// annealProposals is the number of candidate moves scored per round (one
// oracle batch). Fixed, so the oracle-call count is reproducible.
const annealProposals = 8

// Run implements Strategy.
func (annealStrategy) Run(o *Oracle, opt Options) (*Result, error) {
	res := &Result{Fracs: map[string]int{}}
	if err := o.requireFeasible(opt); err != nil {
		return nil, err
	}
	sources := o.Sources()

	// Start from the smallest feasible uniform width — the same baseline
	// the result reports, so the search can only improve on it.
	ufrac, err := UniformBaseline(o, opt)
	if err != nil {
		return nil, err
	}
	o.fillUniform(res, ufrac)
	cur := core.UniformAssignment(sources, ufrac)
	curPower, err := o.Power(cur)
	if err != nil {
		return nil, err
	}
	curCost := o.Cost(cur)
	best, bestCost, bestPower := cur, curCost, curPower

	rounds := opt.AnnealRounds
	if rounds <= 0 {
		rounds = 24 + 8*len(sources)
	}
	if opt.MinFrac == opt.MaxFrac {
		// Degenerate range: the uniform start is the only assignment.
		rounds = 0
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	// Initial temperature of one max-weight bit: a single uphill bit is
	// freely accepted early on, and exponentially unlikely by the end.
	temp := 0.0
	for _, id := range sources {
		temp = math.Max(temp, o.Weight(id))
	}
	cooling := math.Pow(0.02, 1/float64(rounds)) // temp ends at 2 % of start

	for r := 0; r < rounds; r++ {
		if o.Cancelled() {
			break
		}
		props := make([]core.Assignment, 0, annealProposals)
		moves := make([]core.Move, 0, annealProposals)
		for k := 0; k < annealProposals; k++ {
			a := cur.Clone()
			id := sources[rng.Intn(len(sources))]
			down := rng.Intn(2) == 0
			if down && a[id] > opt.MinFrac {
				a[id]--
			} else if a[id] < opt.MaxFrac {
				a[id]++
			} else {
				a[id]-- // at MaxFrac with an up draw; MinFrac < MaxFrac here
			}
			props = append(props, a)
			moves = append(moves, core.Move{Source: id, Frac: a[id]})
		}
		// Each proposal is a single-source change off cur, so the round is
		// scored through the oracle's move path (delta evaluation on
		// move-capable evaluators); the materialized assignments are kept
		// for the acceptance bookkeeping below.
		ps, err := o.PowersMoves(cur, moves)
		if err != nil {
			return nil, err
		}
		for i, a := range props {
			if ps[i] > opt.Budget {
				continue // stay inside the feasible region
			}
			d := o.Cost(a) - curCost
			if d > 0 && rng.Float64() >= math.Exp(-d/temp) {
				continue
			}
			cur, curPower, curCost = a, ps[i], curCost+d
			if curCost < bestCost || (curCost == bestCost && curPower < bestPower) {
				best, bestCost, bestPower = cur, curCost, curPower
			}
			break // one accepted move per round
		}
		o.StepDone(curCost, curPower)
		temp *= cooling
	}

	best.Apply(o.Graph())
	final, err := o.EvaluateGraph()
	if err != nil {
		return nil, err
	}
	res.Power = final
	o.fillFromGraph(res)
	res.Evaluations = o.Evaluations()
	return res, nil
}
