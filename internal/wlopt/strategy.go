package wlopt

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/sfg"
	"repro/internal/trace"
)

// Strategy is a pluggable word-length search procedure. A strategy receives
// the accuracy oracle and the validated options, explores assignments by
// scoring them through the oracle (batch calls fan out across the worker
// pool), and leaves the graph's source widths at its chosen assignment.
//
// Implementations must be deterministic for a given (graph, Options) pair
// at every Options.Workers value: randomized searches must draw all
// randomness from Options.Seed in an order independent of the pool width.
type Strategy interface {
	// Name is the stable registry key ("descent", "ascent", ...).
	Name() string
	// Run executes the search. RunStrategy has already validated the
	// options and checked that the graph has noise sources.
	Run(o *Oracle, opt Options) (*Result, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Strategy{}
	regOrder   []string
)

// Register adds a strategy under its Name. It panics on an empty or
// duplicate name — registration happens at init time, where a collision is
// a programming error.
func Register(s Strategy) {
	name := s.Name()
	if name == "" {
		panic("wlopt: Register with empty strategy name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("wlopt: strategy %q registered twice", name))
	}
	registry[name] = s
	regOrder = append(regOrder, name)
}

// Lookup returns the registered strategy with the given name.
func Lookup(name string) (Strategy, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Strategies lists every registered strategy name in registration order
// (the four built-ins first: descent, ascent, hybrid, anneal).
func Strategies() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, len(regOrder))
	copy(out, regOrder)
	return out
}

// RunStrategy validates the options, builds the oracle, and runs the named
// registered strategy on g. The graph's source widths are left at the
// strategy's chosen assignment.
func RunStrategy(g *sfg.Graph, name string, opt Options) (*Result, error) {
	s, ok := Lookup(name)
	if !ok {
		known := Strategies()
		sort.Strings(known)
		return nil, fmt.Errorf("wlopt: unknown strategy %q (registered: %v)", name, known)
	}
	if err := checkOptions(opt); err != nil {
		return nil, err
	}
	if len(g.NoiseSources()) == 0 {
		return nil, fmt.Errorf("wlopt: graph has no noise sources")
	}
	o := newOracle(g, opt)
	o.strategy = s.Name()
	// The search span covers the whole strategy run; it is a no-op unless
	// Options.Context carries an active trace span (the serving tier's
	// traced submit path), so library and benchmark callers pay nothing.
	sp, _ := trace.Start(opt.Context, "search")
	sp.SetAttr("strategy", s.Name())
	res, err := s.Run(o, opt)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		return nil, err
	}
	res.Strategy = s.Name()
	// The flag is set centrally so every strategy reports cancellation the
	// same way: strategies react to a cancelled context by breaking out of
	// their search loops with the best-so-far assignment.
	res.Cancelled = o.Cancelled()
	sp.SetAttr("evaluations", strconv.Itoa(res.Evaluations))
	if res.Cancelled {
		sp.SetAttr("cancelled", "true")
	}
	sp.End()
	return res, nil
}

func init() {
	Register(descentStrategy{})
	Register(ascentStrategy{})
	Register(hybridStrategy{})
	Register(annealStrategy{})
}
