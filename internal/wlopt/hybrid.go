package wlopt

import "repro/internal/core"

// hybridStrategy combines the two greedy directions: a min-plus-one climb
// from MinFrac to the first feasible assignment, then a max-minus-one trim
// of that assignment. The climb overshoots — its last increment often
// leaves slack that earlier, coarser increments baked into other sources —
// and the trim recovers those bits. The result costs no more than the pure
// ascent result at an oracle-call count far below the pure descent (the
// trim starts near the answer instead of at MaxFrac).
type hybridStrategy struct{}

// Name implements Strategy.
func (hybridStrategy) Name() string { return "hybrid" }

// Run implements Strategy.
func (hybridStrategy) Run(o *Oracle, opt Options) (*Result, error) {
	res := &Result{Fracs: map[string]int{}}
	if err := o.requireFeasible(opt); err != nil {
		return nil, err
	}

	// Phase 1: greedy climb to feasibility.
	cur := core.UniformAssignment(o.Sources(), opt.MinFrac)
	power, err := o.Power(cur)
	if err != nil {
		return nil, err
	}
	cur, _, err = climb(o, opt, cur, power)
	if err != nil {
		return nil, err
	}

	// Phase 2: trim the overshoot back down.
	cur, err = trim(o, opt, cur)
	if err != nil {
		return nil, err
	}

	cur.Apply(o.Graph())
	final, err := o.EvaluateGraph()
	if err != nil {
		return nil, err
	}
	res.Power = final
	o.fillFromGraph(res)

	ufrac, err := UniformBaseline(o, opt)
	if err != nil {
		return nil, err
	}
	o.fillUniform(res, ufrac)
	res.Evaluations = o.Evaluations()
	return res, nil
}
