package wlopt

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/filter"
	"repro/internal/fxsim"
	"repro/internal/qnoise"
	"repro/internal/sfg"
	"repro/internal/systems"
)

// buildTwoStage builds in(q) -> lp(q) -> hp(q) -> out where the lp source
// is heavily attenuated downstream, so the optimizer should strip its bits
// first.
func buildTwoStage(t *testing.T) *sfg.Graph {
	t.Helper()
	lp, err := filter.DesignFIR(filter.FIRSpec{Band: filter.Lowpass, Taps: 31, F1: 0.1, Window: dsp.Hamming})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := filter.DesignFIR(filter.FIRSpec{Band: filter.Highpass, Taps: 31, F1: 0.3, Window: dsp.Hamming})
	if err != nil {
		t.Fatal(err)
	}
	g := sfg.New()
	in := g.Input("in")
	f1 := g.Filter("lp", lp)
	f2 := g.Filter("hp", hp)
	out := g.Output("out")
	g.Chain(in, f1, f2, out)
	g.SetNoise(in, qnoise.Source{Mode: systems.Mode, Frac: 16})
	g.SetNoise(f1, qnoise.Source{Mode: systems.Mode, Frac: 16})
	g.SetNoise(f2, qnoise.Source{Mode: systems.Mode, Frac: 16})
	return g
}

func TestOptimizeMeetsBudget(t *testing.T) {
	g := buildTwoStage(t)
	budget := 1e-8
	res, err := Optimize(g, Options{Budget: budget, MinFrac: 4, MaxFrac: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Power > budget {
		t.Fatalf("optimized power %g exceeds budget %g", res.Power, budget)
	}
	if len(res.Fracs) != 3 {
		t.Fatalf("fracs %v", res.Fracs)
	}
	// The assignment must be verified by the oracle on the mutated graph.
	check, err := core.NewPSDEvaluator(256).Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(check.Power-res.Power) > 1e-15 {
		t.Fatal("graph state does not match reported result")
	}
}

func TestOptimizeExploitsAttenuatedSources(t *testing.T) {
	// The in source is crushed by the (nearly disjoint) low-pass/high-pass
	// cascade, so greedy should strip it to far fewer bits than the
	// sources closer to the output; the hp source hits the output
	// directly and must keep at least as many bits as lp.
	g := buildTwoStage(t)
	res, err := Optimize(g, Options{Budget: 1e-8, MinFrac: 4, MaxFrac: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fracs["hp"] < res.Fracs["lp"] {
		t.Fatalf("expected hp >= lp bits, got %v", res.Fracs)
	}
	if res.Fracs["in"]+4 > res.Fracs["hp"] {
		t.Fatalf("expected in to be stripped well below hp, got %v", res.Fracs)
	}
}

func TestOptimizeBeatsUniform(t *testing.T) {
	g := buildTwoStage(t)
	res, err := Optimize(g, Options{Budget: 1e-8, MinFrac: 4, MaxFrac: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > res.UniformCost {
		t.Fatalf("greedy cost %g worse than uniform %g", res.Cost, res.UniformCost)
	}
	if res.Evaluations < 10 {
		t.Fatalf("implausibly few oracle calls: %d", res.Evaluations)
	}
}

func TestOptimizeResultValidatedBySimulation(t *testing.T) {
	g := buildTwoStage(t)
	budget := 4e-8
	res, err := Optimize(g, Options{Budget: budget, MinFrac: 4, MaxFrac: 24})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := fxsim.Run(g, fxsim.Config{Samples: 300000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The simulated power must honor the budget within Monte-Carlo and
	// model tolerance (the paper's sub-one-bit margin).
	if sim.Power > 2*budget {
		t.Fatalf("simulated power %g blows budget %g (assignment %v)", sim.Power, budget, res.Fracs)
	}
}

func TestOptimizeErrors(t *testing.T) {
	g := buildTwoStage(t)
	if _, err := Optimize(g, Options{Budget: 0, MinFrac: 4, MaxFrac: 20}); err == nil {
		t.Fatal("zero budget should fail")
	}
	if _, err := Optimize(g, Options{Budget: 1, MinFrac: 0, MaxFrac: 20}); err == nil {
		t.Fatal("bad min frac should fail")
	}
	if _, err := Optimize(g, Options{Budget: 1e-30, MinFrac: 4, MaxFrac: 8}); err == nil {
		t.Fatal("unreachable budget should fail")
	}
	empty := sfg.New()
	in := empty.Input("in")
	out := empty.Output("out")
	empty.Connect(in, out)
	if _, err := Optimize(empty, Options{Budget: 1, MinFrac: 4, MaxFrac: 8}); err == nil {
		t.Fatal("no sources should fail")
	}
}

func TestOptimizeWeightedCost(t *testing.T) {
	g := buildTwoStage(t)
	// Make bits at the input stage very expensive: the optimizer should
	// shave them harder than with unit weights.
	res, err := Optimize(g, Options{
		Budget:  1e-8,
		MinFrac: 4, MaxFrac: 24,
		CostPerBit: map[string]float64{"in": 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	gUnit := buildTwoStage(t)
	unit, err := Optimize(gUnit, Options{Budget: 1e-8, MinFrac: 4, MaxFrac: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fracs["in"] > unit.Fracs["in"] {
		t.Fatalf("weighted run should not give the expensive source more bits: %d vs %d",
			res.Fracs["in"], unit.Fracs["in"])
	}
}

func TestOptimizeDWTSystem(t *testing.T) {
	// End-to-end on the paper's Fig. 3 system.
	sys := systems.NewDWT()
	g, err := sys.Graph(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(g, Options{Budget: 1e-7, MinFrac: 4, MaxFrac: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Power > 1e-7 {
		t.Fatalf("DWT optimized power %g over budget", res.Power)
	}
	if len(res.Fracs) != 9 {
		t.Fatalf("expected 9 sources, got %d", len(res.Fracs))
	}
}

func TestOptimizeAscentMeetsBudget(t *testing.T) {
	g := buildTwoStage(t)
	budget := 1e-8
	res, err := OptimizeAscent(g, Options{Budget: budget, MinFrac: 4, MaxFrac: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Power > budget {
		t.Fatalf("ascent power %g exceeds budget %g", res.Power, budget)
	}
	check, err := core.NewPSDEvaluator(256).Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(check.Power-res.Power) > 1e-15 {
		t.Fatal("graph state does not match reported result")
	}
}

func TestAscentAndDescentComparable(t *testing.T) {
	// Both greedy directions must meet the budget; their costs should be
	// within a couple of bits of each other on this small problem.
	budget := 1e-8
	gd := buildTwoStage(t)
	desc, err := Optimize(gd, Options{Budget: budget, MinFrac: 4, MaxFrac: 24})
	if err != nil {
		t.Fatal(err)
	}
	ga := buildTwoStage(t)
	asc, err := OptimizeAscent(ga, Options{Budget: budget, MinFrac: 4, MaxFrac: 24})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(desc.Cost-asc.Cost) > 4 {
		t.Fatalf("descent cost %g vs ascent cost %g diverge", desc.Cost, asc.Cost)
	}
}

func TestOptimizeAscentErrors(t *testing.T) {
	g := buildTwoStage(t)
	if _, err := OptimizeAscent(g, Options{Budget: 0, MinFrac: 4, MaxFrac: 20}); err == nil {
		t.Fatal("zero budget should fail")
	}
	if _, err := OptimizeAscent(g, Options{Budget: 1e-30, MinFrac: 4, MaxFrac: 8}); err == nil {
		t.Fatal("unreachable budget should fail")
	}
}
