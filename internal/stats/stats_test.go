package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if Mean(x) != 2.5 {
		t.Fatalf("mean %g", Mean(x))
	}
	if Variance(x) != 1.25 {
		t.Fatalf("variance %g", Variance(x))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
}

func TestMeanSquareDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 50)
		for i := range x {
			x[i] = rng.NormFloat64()*3 + 1
		}
		m := Mean(x)
		return math.Abs(MeanSquare(x)-(m*m+Variance(x))) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEd(t *testing.T) {
	if got := Ed(2, 1); got != 0.5 {
		t.Fatalf("Ed(2,1)=%g", got)
	}
	if got := Ed(1, 2); got != -1 {
		t.Fatalf("Ed(1,2)=%g", got)
	}
	if !math.IsNaN(Ed(0, 1)) {
		t.Fatal("Ed with zero sim power should be NaN")
	}
	if Ed(5, 5) != 0 {
		t.Fatal("perfect estimate should give Ed=0")
	}
}

func TestSubOneBitBand(t *testing.T) {
	// The paper's band: Ed in (-75%, 300%) in their sign convention maps to
	// est/sim in (1/4, 4); with Ed = (sim-est)/sim that is Ed in (-3, 0.75).
	cases := map[float64]bool{
		0:     true,
		0.5:   true,
		-2.9:  true,
		0.74:  true,
		0.76:  false,
		-3.1:  false,
		0.001: true,
	}
	for ed, want := range cases {
		if got := SubOneBit(ed); got != want {
			t.Errorf("SubOneBit(%g) = %v, want %v", ed, got, want)
		}
	}
}

func TestEquivalentBits(t *testing.T) {
	// Ed = 0 -> exact -> 0 bits.
	if EquivalentBits(0) != 0 {
		t.Fatal("exact estimate should be 0 bits")
	}
	// est = 4*sim -> Ed = -3 -> exactly 1 bit.
	if got := EquivalentBits(-3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("EquivalentBits(-3) = %g, want 1", got)
	}
	// est = sim/4 -> Ed = 0.75 -> 1 bit.
	if got := EquivalentBits(0.75); math.Abs(got-1) > 1e-12 {
		t.Fatalf("EquivalentBits(0.75) = %g, want 1", got)
	}
	if !math.IsInf(EquivalentBits(1.5), 1) {
		t.Fatal("Ed >= 1 (zero/negative est) should be +Inf bits")
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 10000)
	for i := range x {
		x[i] = rng.NormFloat64()*2 + 5
	}
	var r Running
	r.AddSlice(x)
	if math.Abs(r.Mean()-Mean(x)) > 1e-10 {
		t.Fatalf("running mean %g vs %g", r.Mean(), Mean(x))
	}
	if math.Abs(r.Variance()-Variance(x)) > 1e-9 {
		t.Fatalf("running variance %g vs %g", r.Variance(), Variance(x))
	}
	if math.Abs(r.MeanSquare()-MeanSquare(x)) > 1e-9 {
		t.Fatalf("running mean square %g vs %g", r.MeanSquare(), MeanSquare(x))
	}
	if r.N() != 10000 {
		t.Fatalf("N = %d", r.N())
	}
}

func TestRunningMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	var whole, a, b Running
	whole.AddSlice(x)
	a.AddSlice(x[:1234])
	b.AddSlice(x[1234:])
	a.Merge(b)
	if math.Abs(a.Mean()-whole.Mean()) > 1e-10 || math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merge mismatch: %g/%g vs %g/%g", a.Mean(), a.Variance(), whole.Mean(), whole.Variance())
	}
	var empty Running
	empty.Merge(a)
	if empty.N() != a.N() || empty.Mean() != a.Mean() {
		t.Fatal("merge into empty should copy")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{-0.1, 0.2, math.NaN(), 0.05})
	if s.N != 3 {
		t.Fatalf("N = %d, want 3 (NaN excluded)", s.N)
	}
	if s.Min != -0.1 || s.Max != 0.2 {
		t.Fatalf("min/max %g/%g", s.Min, s.Max)
	}
	wantMeanAbs := (0.1 + 0.2 + 0.05) / 3
	if math.Abs(s.MeanAbs-wantMeanAbs) > 1e-12 {
		t.Fatalf("meanAbs %g want %g", s.MeanAbs, wantMeanAbs)
	}
	if s.MaxAbs != 0.2 {
		t.Fatalf("maxAbs %g", s.MaxAbs)
	}
	if s.Median != 0.05 {
		t.Fatalf("median %g", s.Median)
	}
	if got := s.Quantile(0); got != -0.1 {
		t.Fatalf("q0 %g", got)
	}
	if got := s.Quantile(1); got != 0.2 {
		t.Fatalf("q1 %g", got)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("empty summary should have N=0")
	}
	s = Summarize([]float64{math.NaN()})
	if s.N != 0 {
		t.Fatal("all-NaN summary should have N=0")
	}
}

func TestDBAndSQNR(t *testing.T) {
	if DB(100) != 20 {
		t.Fatalf("DB(100) = %g", DB(100))
	}
	if !math.IsInf(DB(0), -1) {
		t.Fatal("DB(0) should be -Inf")
	}
	if got := SQNR(1, 0.001); math.Abs(got-30) > 1e-9 {
		t.Fatalf("SQNR = %g", got)
	}
	if !math.IsInf(SQNR(1, 0), 1) {
		t.Fatal("SQNR with zero noise should be +Inf")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 1, 2, 3})
	if got := s.Quantile(0.5); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("median of 0..3 = %g, want 1.5", got)
	}
	if got := s.Quantile(0.25); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("q25 = %g, want 0.75", got)
	}
}

func TestNewRunningFromMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := make([]float64, 4000)
	for i := range x {
		x[i] = rng.NormFloat64()*1.5 - 2
	}
	var direct Running
	direct.AddSlice(x[:1500])
	rebuilt := NewRunningFromMoments(direct.N(), direct.Mean(), direct.Variance())
	var rest Running
	rest.AddSlice(x[1500:])
	rebuilt.Merge(rest)
	var whole Running
	whole.AddSlice(x)
	if math.Abs(rebuilt.Mean()-whole.Mean()) > 1e-10 {
		t.Fatalf("mean %g vs %g", rebuilt.Mean(), whole.Mean())
	}
	if math.Abs(rebuilt.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("variance %g vs %g", rebuilt.Variance(), whole.Variance())
	}
	empty := NewRunningFromMoments(0, 5, 5)
	if empty.N() != 0 {
		t.Fatal("non-positive n should give empty accumulator")
	}
}
