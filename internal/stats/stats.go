// Package stats provides the statistical helpers shared by the accuracy
// experiments: moments, Welford running statistics, the paper's Ed
// deviation metric (Eq. 15), and batch summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance (divide by N) of x.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// MeanSquare returns E[x^2] = (1/N) sum x^2, the quantity the paper calls
// error power.
func MeanSquare(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s / float64(len(x))
}

// Ed computes the paper's MSE deviation metric (Eq. 15):
//
//	Ed = (E[err_sim^2] - E[err_est^2]) / E[err_sim^2]
//
// A value inside (-75 %, +300 %) corresponds to sub-one-bit estimation
// accuracy. Returned as a fraction (0.01 == 1 %). Ed is NaN when the
// simulated power is zero.
func Ed(simPower, estPower float64) float64 {
	if simPower == 0 {
		return math.NaN()
	}
	return (simPower - estPower) / simPower
}

// SubOneBit reports whether an Ed value (fraction) lies inside the
// sub-one-bit accuracy band (-75 %, +300 %) derived in the paper from the
// 4x power ratio between successive fractional word-lengths.
func SubOneBit(ed float64) bool {
	return ed > -3.0 && ed < 0.75
}

// EquivalentBits converts an Ed fraction into the word-length error it
// corresponds to: |log4(1-Ed)| bits (a 1-bit change scales noise power by 4).
// NaN inputs propagate.
func EquivalentBits(ed float64) float64 {
	r := 1 - ed
	if r <= 0 {
		return math.Inf(1)
	}
	return math.Abs(math.Log(r) / math.Log(4))
}

// Running accumulates mean and variance incrementally using Welford's
// algorithm; it is numerically stable for long Monte-Carlo runs.
type Running struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddSlice folds every value of x into the accumulator.
func (r *Running) AddSlice(x []float64) {
	for _, v := range x {
		r.Add(v)
	}
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the running mean.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the running population variance.
func (r *Running) Variance() float64 {
	if r.n == 0 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// MeanSquare returns the running E[x^2] = mean^2 + variance.
func (r *Running) MeanSquare() float64 {
	return r.mean*r.mean + r.Variance()
}

// NewRunningFromMoments reconstructs an accumulator from aggregate
// statistics, enabling Merge of results whose raw samples are gone.
func NewRunningFromMoments(n int64, mean, variance float64) Running {
	if n <= 0 {
		return Running{}
	}
	return Running{n: n, mean: mean, m2: variance * float64(n)}
}

// Merge folds another accumulator into r (parallel Welford combination).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.mean += d * float64(o.n) / float64(n)
	r.n = n
}

// Summary holds order statistics of a batch of scalar results, used for the
// Table-I style min/max/mean(|.|) rows.
type Summary struct {
	N        int
	Min      float64
	Max      float64
	Mean     float64
	MeanAbs  float64
	Median   float64
	StdDev   float64
	MaxAbs   float64
	Quantile func(p float64) float64 `json:"-"`
}

// Summarize computes a Summary over x. NaN values are excluded and counted
// out of N. Empty (or all-NaN) input yields a zero Summary.
func Summarize(x []float64) Summary {
	clean := make([]float64, 0, len(x))
	for _, v := range x {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), clean...)
	sort.Float64s(sorted)
	s := Summary{
		N:    len(clean),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		Mean: Mean(clean),
	}
	for _, v := range clean {
		a := math.Abs(v)
		s.MeanAbs += a
		if a > s.MaxAbs {
			s.MaxAbs = a
		}
	}
	s.MeanAbs /= float64(len(clean))
	s.StdDev = math.Sqrt(Variance(clean))
	s.Median = quantileSorted(sorted, 0.5)
	s.Quantile = func(p float64) float64 { return quantileSorted(sorted, p) }
	return s
}

func quantileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders a Summary as a compact single line with percentages.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g%% max=%.4g%% mean|.|=%.4g%%",
		s.N, 100*s.Min, 100*s.Max, 100*s.MeanAbs)
}

// DB converts a power ratio to decibels; zero or negative ratios map to -Inf.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// SQNR returns the signal-to-quantization-noise ratio in dB.
func SQNR(signalPower, noisePower float64) float64 {
	if noisePower <= 0 {
		return math.Inf(1)
	}
	return DB(signalPower / noisePower)
}
