// Package filter provides digital filter design and runtime structures: FIR
// design by the windowed-sinc method, IIR design from Butterworth and
// Chebyshev-I analog prototypes via the bilinear transform, frequency
// response evaluation on uniform grids, impulse-response extraction, a
// transposed direct-form-II runtime, and stability testing. It supplies the
// 147-filter FIR and IIR banks of the paper's Table I.
package filter

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/fft"
)

// BandType enumerates the filter functionalities used in the paper's
// Table I experiment (low-pass, high-pass, band-pass) plus band-stop.
type BandType int

const (
	// Lowpass passes frequencies below the cutoff.
	Lowpass BandType = iota
	// Highpass passes frequencies above the cutoff.
	Highpass
	// Bandpass passes frequencies between two cutoffs.
	Bandpass
	// Bandstop rejects frequencies between two cutoffs.
	Bandstop
)

// String implements fmt.Stringer.
func (b BandType) String() string {
	switch b {
	case Lowpass:
		return "lowpass"
	case Highpass:
		return "highpass"
	case Bandpass:
		return "bandpass"
	case Bandstop:
		return "bandstop"
	default:
		return fmt.Sprintf("BandType(%d)", int(b))
	}
}

// Filter is a rational discrete-time transfer function
// H(z) = B(z^-1)/A(z^-1) with A[0] == 1 (normalized). FIR filters have
// A == [1].
type Filter struct {
	B []float64 // feedforward coefficients b0..bM
	A []float64 // feedback coefficients a0..aN with a0 == 1
	// Desc is a human-readable description of the design.
	Desc string
}

// NewFIR wraps taps as an FIR Filter.
func NewFIR(taps []float64, desc string) Filter {
	return Filter{B: append([]float64(nil), taps...), A: []float64{1}, Desc: desc}
}

// IsFIR reports whether the filter has no feedback.
func (f Filter) IsFIR() bool {
	for i, a := range f.A {
		if i == 0 {
			continue
		}
		if a != 0 {
			return false
		}
	}
	return true
}

// Order returns max(len(B), len(A)) - 1.
func (f Filter) Order() int {
	o := len(f.B) - 1
	if len(f.A)-1 > o {
		o = len(f.A) - 1
	}
	return o
}

// Normalize divides all coefficients by A[0] so that A[0] == 1. It panics
// if A is empty or A[0] == 0.
func (f Filter) Normalize() Filter {
	if len(f.A) == 0 || f.A[0] == 0 {
		panic("filter: cannot normalize with empty or zero-leading A")
	}
	if f.A[0] == 1 {
		return f
	}
	g := 1 / f.A[0]
	nb := make([]float64, len(f.B))
	na := make([]float64, len(f.A))
	for i, v := range f.B {
		nb[i] = v * g
	}
	for i, v := range f.A {
		na[i] = v * g
	}
	return Filter{B: nb, A: na, Desc: f.Desc}
}

// Response evaluates the complex frequency response on n uniform bins
// F = k/n, k = 0..n-1.
func (f Filter) Response(n int) []complex128 {
	return fft.FrequencyResponse(f.B, f.A, n)
}

// ResponseAt evaluates H(e^{j 2 pi F}) at one normalized frequency.
func (f Filter) ResponseAt(F float64) complex128 {
	z := cmplx.Exp(complex(0, -2*math.Pi*F))
	num := horner(f.B, z)
	den := horner(f.A, z)
	return num / den
}

func horner(c []float64, z complex128) complex128 {
	var acc complex128
	for i := len(c) - 1; i >= 0; i-- {
		acc = acc*z + complex(c[i], 0)
	}
	return acc
}

// Magnitude2 returns |H|^2 on n uniform bins.
func (f Filter) Magnitude2(n int) []float64 {
	return fft.Magnitude2(f.Response(n))
}

// DCGain returns H(1) = sum(B)/sum(A).
func (f Filter) DCGain() float64 {
	var nb, na float64
	for _, v := range f.B {
		nb += v
	}
	for _, v := range f.A {
		na += v
	}
	return nb / na
}

// PowerGain returns sum h[n]^2, the white-noise power gain of the filter.
// FIR filters are summed exactly; IIR impulse responses are accumulated
// until the tail is negligible (or maxLen samples).
func (f Filter) PowerGain() float64 {
	if f.IsFIR() {
		var s float64
		for _, v := range f.B {
			s += v * v
		}
		return s
	}
	h := f.ImpulseResponse(1 << 16)
	var s float64
	for _, v := range h {
		s += v * v
	}
	return s
}

// ImpulseResponse simulates the first n samples of h[k].
func (f Filter) ImpulseResponse(n int) []float64 {
	st := NewState(f)
	out := make([]float64, n)
	for i := range out {
		x := 0.0
		if i == 0 {
			x = 1
		}
		out[i] = st.Step(x)
	}
	return out
}

// String renders a short description.
func (f Filter) String() string {
	kind := "IIR"
	if f.IsFIR() {
		kind = "FIR"
	}
	d := f.Desc
	if d == "" {
		d = "filter"
	}
	return fmt.Sprintf("%s %s order %d", d, kind, f.Order())
}

// State is a transposed direct-form-II runtime for a Filter. It processes
// samples one at a time with O(order) work and holds the delay line between
// calls.
type State struct {
	b, a []float64
	w    []float64 // delay line, len = order
}

// NewState builds a fresh runtime for f (normalized first if needed).
func NewState(f Filter) *State {
	nf := f.Normalize()
	order := nf.Order()
	b := make([]float64, order+1)
	a := make([]float64, order+1)
	copy(b, nf.B)
	copy(a, nf.A)
	a[0] = 1
	return &State{b: b, a: a, w: make([]float64, order)}
}

// Step processes one input sample and returns one output sample.
func (s *State) Step(x float64) float64 {
	if len(s.w) == 0 {
		return s.b[0] * x
	}
	y := s.b[0]*x + s.w[0]
	for i := 0; i < len(s.w)-1; i++ {
		s.w[i] = s.b[i+1]*x + s.w[i+1] - s.a[i+1]*y
	}
	last := len(s.w) - 1
	s.w[last] = s.b[last+1]*x - s.a[last+1]*y
	return y
}

// Process filters a whole slice, returning a new slice.
func (s *State) Process(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = s.Step(v)
	}
	return out
}

// Reset zeroes the delay line.
func (s *State) Reset() {
	for i := range s.w {
		s.w[i] = 0
	}
}
