package filter

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

func TestNewFIRAndPredicates(t *testing.T) {
	f := NewFIR([]float64{0.5, 0.5}, "avg")
	if !f.IsFIR() {
		t.Fatal("FIR not recognized")
	}
	if f.Order() != 1 {
		t.Fatalf("order %d", f.Order())
	}
	iir := Filter{B: []float64{1}, A: []float64{1, -0.5}}
	if iir.IsFIR() {
		t.Fatal("IIR misclassified as FIR")
	}
}

func TestNormalize(t *testing.T) {
	f := Filter{B: []float64{2, 4}, A: []float64{2, 1}}
	n := f.Normalize()
	if n.A[0] != 1 || n.A[1] != 0.5 || n.B[0] != 1 || n.B[1] != 2 {
		t.Fatalf("normalize: %+v", n)
	}
}

func TestDCGain(t *testing.T) {
	f := NewFIR([]float64{0.25, 0.25, 0.25, 0.25}, "ma4")
	if math.Abs(f.DCGain()-1) > 1e-12 {
		t.Fatalf("DC gain %g", f.DCGain())
	}
	iir := Filter{B: []float64{0.5}, A: []float64{1, -0.5}}
	if math.Abs(iir.DCGain()-1) > 1e-12 {
		t.Fatalf("IIR DC gain %g", iir.DCGain())
	}
}

func TestResponseMatchesResponseAt(t *testing.T) {
	f := Filter{B: []float64{1, -0.3, 0.2}, A: []float64{1, -0.4}}
	n := 64
	resp := f.Response(n)
	for k := 0; k < n; k++ {
		want := f.ResponseAt(float64(k) / float64(n))
		if cmplx.Abs(resp[k]-want) > 1e-9 {
			t.Fatalf("bin %d: %v vs %v", k, resp[k], want)
		}
	}
}

func TestPowerGainFIRExact(t *testing.T) {
	f := NewFIR([]float64{1, 2, 3}, "t")
	if f.PowerGain() != 14 {
		t.Fatalf("power gain %g", f.PowerGain())
	}
}

func TestPowerGainIIRGeometric(t *testing.T) {
	// h[n] = 0.5^n -> sum h^2 = 1/(1-0.25) = 4/3.
	f := Filter{B: []float64{1}, A: []float64{1, -0.5}}
	if math.Abs(f.PowerGain()-4.0/3) > 1e-9 {
		t.Fatalf("IIR power gain %g, want %g", f.PowerGain(), 4.0/3)
	}
}

func TestImpulseResponseIIR(t *testing.T) {
	f := Filter{B: []float64{1}, A: []float64{1, -0.5}}
	h := f.ImpulseResponse(8)
	for i, v := range h {
		want := math.Pow(0.5, float64(i))
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("h[%d] = %g, want %g", i, v, want)
		}
	}
}

func TestStateMatchesConvolutionFIR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	taps := make([]float64, 12)
	for i := range taps {
		taps[i] = rng.NormFloat64()
	}
	f := NewFIR(taps, "rand")
	x := make([]float64, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := NewState(f).Process(x)
	want := dsp.ConvolveDirect(x, taps)[:len(x)]
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("sample %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestStateIIRRecursion(t *testing.T) {
	// y[n] = x[n] + 0.9 y[n-1] on a step input converges to 10.
	f := Filter{B: []float64{1}, A: []float64{1, -0.9}}
	st := NewState(f)
	var y float64
	for i := 0; i < 500; i++ {
		y = st.Step(1)
	}
	if math.Abs(y-10) > 1e-6 {
		t.Fatalf("step response %g, want 10", y)
	}
	st.Reset()
	if st.Step(0) != 0 {
		t.Fatal("state not cleared by Reset")
	}
}

func TestDesignFIRLowpassResponse(t *testing.T) {
	f, err := DesignFIR(FIRSpec{Band: Lowpass, Taps: 63, F1: 0.2, Window: dsp.Hamming})
	if err != nil {
		t.Fatal(err)
	}
	// Unit DC gain, strong stopband rejection.
	if math.Abs(f.DCGain()-1) > 1e-9 {
		t.Fatalf("DC gain %g", f.DCGain())
	}
	if g := cmplx.Abs(f.ResponseAt(0.35)); g > 0.01 {
		t.Fatalf("stopband gain %g at F=0.35", g)
	}
	if g := cmplx.Abs(f.ResponseAt(0.1)); math.Abs(g-1) > 0.01 {
		t.Fatalf("passband gain %g at F=0.1", g)
	}
}

func TestDesignFIRHighpassResponse(t *testing.T) {
	f, err := DesignFIR(FIRSpec{Band: Highpass, Taps: 64, F1: 0.2, Window: dsp.Hamming})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.B) != 65 {
		t.Fatalf("even tap count should be bumped to odd, got %d", len(f.B))
	}
	if g := cmplx.Abs(f.ResponseAt(0.45)); math.Abs(g-1) > 0.02 {
		t.Fatalf("passband gain %g at F=0.45", g)
	}
	if g := cmplx.Abs(f.ResponseAt(0.05)); g > 0.01 {
		t.Fatalf("stopband gain %g at F=0.05", g)
	}
}

func TestDesignFIRBandpassResponse(t *testing.T) {
	f, err := DesignFIR(FIRSpec{Band: Bandpass, Taps: 81, F1: 0.15, F2: 0.3, Window: dsp.Blackman})
	if err != nil {
		t.Fatal(err)
	}
	if g := cmplx.Abs(f.ResponseAt(0.225)); math.Abs(g-1) > 0.02 {
		t.Fatalf("center gain %g", g)
	}
	for _, F := range []float64{0.03, 0.45} {
		if g := cmplx.Abs(f.ResponseAt(F)); g > 0.02 {
			t.Fatalf("stopband gain %g at F=%g", g, F)
		}
	}
}

func TestDesignFIRBandstopResponse(t *testing.T) {
	f, err := DesignFIR(FIRSpec{Band: Bandstop, Taps: 81, F1: 0.15, F2: 0.3, Window: dsp.Hamming})
	if err != nil {
		t.Fatal(err)
	}
	if g := cmplx.Abs(f.ResponseAt(0.225)); g > 0.02 {
		t.Fatalf("notch gain %g", g)
	}
	if math.Abs(f.DCGain()-1) > 0.01 {
		t.Fatalf("DC gain %g", f.DCGain())
	}
}

func TestDesignFIRKaiser(t *testing.T) {
	f, err := DesignFIR(FIRSpec{Band: Lowpass, Taps: 51, F1: 0.2, Window: dsp.Kaiser, Beta: 6})
	if err != nil {
		t.Fatal(err)
	}
	if g := cmplx.Abs(f.ResponseAt(0.35)); g > 0.005 {
		t.Fatalf("Kaiser stopband gain %g", g)
	}
}

func TestDesignFIRErrors(t *testing.T) {
	bad := []FIRSpec{
		{Band: Lowpass, Taps: 0, F1: 0.2},
		{Band: Lowpass, Taps: 16, F1: 0},
		{Band: Lowpass, Taps: 16, F1: 0.6},
		{Band: Bandpass, Taps: 16, F1: 0.3, F2: 0.2},
		{Band: Bandpass, Taps: 16, F1: 0.3, F2: 0.6},
	}
	for _, s := range bad {
		if _, err := DesignFIR(s); err == nil {
			t.Errorf("spec %+v should fail", s)
		}
	}
}

func TestFIRLinearPhase(t *testing.T) {
	// Windowed-sinc designs are symmetric -> linear phase.
	f, _ := DesignFIR(FIRSpec{Band: Lowpass, Taps: 33, F1: 0.25, Window: dsp.Hann})
	n := len(f.B)
	for i := 0; i < n/2; i++ {
		if math.Abs(f.B[i]-f.B[n-1-i]) > 1e-12 {
			t.Fatalf("taps not symmetric at %d", i)
		}
	}
}

func TestDesignIIRButterworthLowpass(t *testing.T) {
	f, err := DesignIIR(IIRSpec{Kind: Butterworth, Band: Lowpass, Order: 4, F1: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsStable() {
		t.Fatal("unstable design")
	}
	if math.Abs(f.DCGain()-1) > 1e-6 {
		t.Fatalf("DC gain %g", f.DCGain())
	}
	// -3 dB at the cutoff.
	if g := cmplx.Abs(f.ResponseAt(0.2)); math.Abs(g-math.Sqrt(0.5)) > 0.01 {
		t.Fatalf("cutoff gain %g, want %g", g, math.Sqrt(0.5))
	}
	if g := cmplx.Abs(f.ResponseAt(0.4)); g > 0.05 {
		t.Fatalf("stopband gain %g", g)
	}
}

func TestDesignIIRButterworthHighpass(t *testing.T) {
	f, err := DesignIIR(IIRSpec{Kind: Butterworth, Band: Highpass, Order: 5, F1: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsStable() {
		t.Fatal("unstable design")
	}
	if g := cmplx.Abs(f.ResponseAt(0.45)); math.Abs(g-1) > 0.01 {
		t.Fatalf("passband gain %g", g)
	}
	if g := cmplx.Abs(f.ResponseAt(0.02)); g > 0.01 {
		t.Fatalf("stopband gain %g", g)
	}
	if g := cmplx.Abs(f.ResponseAt(0.15)); math.Abs(g-math.Sqrt(0.5)) > 0.01 {
		t.Fatalf("cutoff gain %g", g)
	}
}

func TestDesignIIRButterworthBandpass(t *testing.T) {
	f, err := DesignIIR(IIRSpec{Kind: Butterworth, Band: Bandpass, Order: 3, F1: 0.15, F2: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsStable() {
		t.Fatal("unstable design")
	}
	if f.Order() != 6 {
		t.Fatalf("bandpass order %d, want 6", f.Order())
	}
	// Geometric center of the warped band has unit gain.
	center := geomCenterDigital(0.15, 0.25)
	if g := cmplx.Abs(f.ResponseAt(center)); math.Abs(g-1) > 0.02 {
		t.Fatalf("center gain %g at F=%g", g, center)
	}
	for _, F := range []float64{0.03, 0.47} {
		if g := cmplx.Abs(f.ResponseAt(F)); g > 0.02 {
			t.Fatalf("stopband gain %g at F=%g", g, F)
		}
	}
}

// geomCenterDigital maps the analog geometric center of a prewarped band
// back to the digital axis.
func geomCenterDigital(F1, F2 float64) float64 {
	w1 := 2 * math.Tan(math.Pi*F1)
	w2 := 2 * math.Tan(math.Pi*F2)
	w0 := math.Sqrt(w1 * w2)
	return math.Atan(w0/2) / math.Pi
}

func TestDesignIIRChebyshev(t *testing.T) {
	f, err := DesignIIR(IIRSpec{Kind: Chebyshev1, Band: Lowpass, Order: 5, F1: 0.2, RippleDB: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsStable() {
		t.Fatal("unstable design")
	}
	// Odd order: DC gain is 1; passband ripple bounded by 0.5 dB.
	if math.Abs(f.DCGain()-1) > 1e-6 {
		t.Fatalf("DC gain %g", f.DCGain())
	}
	minRip := 1.0
	for F := 0.0; F <= 0.2; F += 0.002 {
		g := cmplx.Abs(f.ResponseAt(F))
		if g < minRip {
			minRip = g
		}
		if g > 1.001 {
			t.Fatalf("passband gain %g > 1 at F=%g", g, F)
		}
	}
	wantFloor := math.Pow(10, -0.5/20)
	if minRip < wantFloor-0.005 {
		t.Fatalf("ripple floor %g below %g", minRip, wantFloor)
	}
	if g := cmplx.Abs(f.ResponseAt(0.4)); g > 0.01 {
		t.Fatalf("stopband gain %g", g)
	}
}

func TestDesignIIRChebyshevEvenOrderDC(t *testing.T) {
	rip := 1.0
	f, err := DesignIIR(IIRSpec{Kind: Chebyshev1, Band: Lowpass, Order: 4, F1: 0.2, RippleDB: rip})
	if err != nil {
		t.Fatal(err)
	}
	// Even-order Chebyshev-I sits at -ripple dB at DC.
	want := math.Pow(10, -rip/20)
	if math.Abs(f.DCGain()-want) > 0.01 {
		t.Fatalf("even-order DC gain %g, want %g", f.DCGain(), want)
	}
}

func TestDesignIIRErrors(t *testing.T) {
	bad := []IIRSpec{
		{Kind: Butterworth, Band: Lowpass, Order: 0, F1: 0.2},
		{Kind: Butterworth, Band: Lowpass, Order: 4, F1: 0},
		{Kind: Butterworth, Band: Bandpass, Order: 4, F1: 0.3, F2: 0.2},
	}
	for _, s := range bad {
		if _, err := DesignIIR(s); err == nil {
			t.Errorf("spec %+v should fail", s)
		}
	}
}

func TestIsStable(t *testing.T) {
	stable := Filter{B: []float64{1}, A: []float64{1, -0.5}}
	if !stable.IsStable() {
		t.Fatal("pole at 0.5 should be stable")
	}
	unstable := Filter{B: []float64{1}, A: []float64{1, -1.5}}
	if unstable.IsStable() {
		t.Fatal("pole at 1.5 should be unstable")
	}
	edge := Filter{B: []float64{1}, A: []float64{1, -1}}
	if edge.IsStable() {
		t.Fatal("pole on unit circle should be reported unstable")
	}
	fir := NewFIR([]float64{1, 2, 3}, "")
	if !fir.IsStable() {
		t.Fatal("FIR always stable")
	}
}

func TestIsStableQuickRandomSecondOrder(t *testing.T) {
	// For a1, a2 the stability triangle is |a2|<1 and |a1|<1+a2.
	fn := func(a1, a2 float64) bool {
		a1 = math.Mod(a1, 3)
		a2 = math.Mod(a2, 3)
		if math.IsNaN(a1) || math.IsNaN(a2) {
			return true
		}
		f := Filter{B: []float64{1}, A: []float64{1, a1, a2}}
		inTriangle := math.Abs(a2) < 1 && math.Abs(a1) < 1+a2
		return f.IsStable() == inTriangle
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStateMatchesResponseSteadyStateSine(t *testing.T) {
	// Drive an IIR with a sine; after transients the amplitude must match
	// |H(F)|.
	f, _ := DesignIIR(IIRSpec{Kind: Butterworth, Band: Lowpass, Order: 4, F1: 0.2})
	F := 0.1
	st := NewState(f)
	n := 4000
	// Project the steady-state half onto the quadrature pair at F to
	// recover the amplitude regardless of sampling phase.
	var sc, ss float64
	half := n / 2
	for i := 0; i < n; i++ {
		y := st.Step(math.Sin(2 * math.Pi * F * float64(i)))
		if i >= half {
			ph := 2 * math.Pi * F * float64(i)
			sc += y * math.Cos(ph)
			ss += y * math.Sin(ph)
		}
	}
	amp := 2 * math.Hypot(sc, ss) / float64(n-half)
	want := cmplx.Abs(f.ResponseAt(F))
	if math.Abs(amp-want) > 0.01 {
		t.Fatalf("steady-state amplitude %g, want %g", amp, want)
	}
}

func TestBuildFIRBankCount(t *testing.T) {
	bank, err := BuildFIRBank(DefaultFIRBank())
	if err != nil {
		t.Fatal(err)
	}
	if len(bank) != 147 {
		t.Fatalf("FIR bank size %d, want 147", len(bank))
	}
	for _, f := range bank {
		if !f.IsFIR() {
			t.Fatalf("non-FIR in FIR bank: %v", f)
		}
	}
}

func TestBuildIIRBankCountAndStability(t *testing.T) {
	bank, err := BuildIIRBank(DefaultIIRBank())
	if err != nil {
		t.Fatal(err)
	}
	if len(bank) != 147 {
		t.Fatalf("IIR bank size %d, want 147", len(bank))
	}
	for i, f := range bank {
		if !f.IsStable() {
			t.Fatalf("bank member %d unstable: %v", i, f)
		}
	}
}

func TestBandTypeStrings(t *testing.T) {
	if Lowpass.String() != "lowpass" || Highpass.String() != "highpass" ||
		Bandpass.String() != "bandpass" || Bandstop.String() != "bandstop" {
		t.Fatal("band type strings")
	}
	if Butterworth.String() != "butterworth" || Chebyshev1.String() != "chebyshev1" {
		t.Fatal("IIR kind strings")
	}
}

func BenchmarkStateStepIIR10(b *testing.B) {
	f, _ := DesignIIR(IIRSpec{Kind: Butterworth, Band: Lowpass, Order: 10, F1: 0.2})
	st := NewState(f)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Step(float64(i&1) - 0.5)
	}
}

func BenchmarkDesignIIRBandpass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = DesignIIR(IIRSpec{Kind: Butterworth, Band: Bandpass, Order: 5, F1: 0.1, F2: 0.2})
	}
}
