package filter

import (
	"fmt"
	"io"
	"math"
	"math/cmplx"
)

// MagnitudeDB returns 20 log10 |H(F)| at one frequency; -Inf for exact
// nulls.
func (f Filter) MagnitudeDB(F float64) float64 {
	m := cmplx.Abs(f.ResponseAt(F))
	if m <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(m)
}

// Phase returns the response phase in radians at F, in (-pi, pi].
func (f Filter) Phase(F float64) float64 {
	return cmplx.Phase(f.ResponseAt(F))
}

// GroupDelay returns -d(phase)/d(omega) in samples at F, evaluated by
// central differencing with unwrapping. Linear-phase FIR filters return
// (taps-1)/2 across the passband.
func (f Filter) GroupDelay(F float64) float64 {
	const h = 1e-5
	p1 := f.Phase(F - h)
	p2 := f.Phase(F + h)
	d := p2 - p1
	// Unwrap the single step.
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	return -d / (2 * math.Pi * 2 * h)
}

// BandEdges locates the -3 dB points of the response relative to its peak
// by scanning n grid points; returns the lowest and highest frequencies at
// which the magnitude is within 3 dB of the maximum.
func (f Filter) BandEdges(n int) (lo, hi float64) {
	if n < 8 {
		n = 256
	}
	mags := make([]float64, n/2+1)
	peak := 0.0
	for k := range mags {
		mags[k] = cmplx.Abs(f.ResponseAt(float64(k) / float64(n)))
		if mags[k] > peak {
			peak = mags[k]
		}
	}
	thresh := peak * math.Sqrt(0.5)
	lo, hi = math.NaN(), math.NaN()
	for k, m := range mags {
		if m >= thresh {
			F := float64(k) / float64(n)
			if math.IsNaN(lo) {
				lo = F
			}
			hi = F
		}
	}
	return lo, hi
}

// WriteResponse prints a frequency-response table (magnitude dB, phase,
// group delay) on n/2+1 grid points — the guts of the filtergen CLI and a
// quick debugging aid.
func (f Filter) WriteResponse(w io.Writer, n int) {
	fmt.Fprintf(w, "# %s\n", f.String())
	fmt.Fprintf(w, "#%9s %12s %12s %12s\n", "F", "mag(dB)", "phase(rad)", "grpdelay")
	for k := 0; k <= n/2; k++ {
		F := float64(k) / float64(n)
		fmt.Fprintf(w, "%10.5f %12.4f %12.4f %12.4f\n",
			F, f.MagnitudeDB(F), f.Phase(F), f.GroupDelay(F))
	}
}
