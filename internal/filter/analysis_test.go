package filter

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dsp"
)

func TestMagnitudeDB(t *testing.T) {
	f := NewFIR([]float64{0.5}, "attenuator")
	if got := f.MagnitudeDB(0.1); math.Abs(got-(-6.0206)) > 1e-3 {
		t.Fatalf("0.5 gain = %g dB, want -6.02", got)
	}
	null := NewFIR([]float64{1, -1}, "differencer")
	if !math.IsInf(null.MagnitudeDB(0), -1) {
		t.Fatal("DC null should be -Inf dB")
	}
}

func TestGroupDelayLinearPhaseFIR(t *testing.T) {
	f, err := DesignFIR(FIRSpec{Band: Lowpass, Taps: 41, F1: 0.2, Window: dsp.Hamming})
	if err != nil {
		t.Fatal(err)
	}
	want := 20.0 // (41-1)/2
	for _, F := range []float64{0.02, 0.1, 0.15} {
		if gd := f.GroupDelay(F); math.Abs(gd-want) > 0.05 {
			t.Fatalf("group delay %g at F=%g, want %g", gd, F, want)
		}
	}
}

func TestGroupDelayPureDelay(t *testing.T) {
	// z^-5 has constant group delay 5.
	f := NewFIR([]float64{0, 0, 0, 0, 0, 1}, "z5")
	for _, F := range []float64{0.05, 0.2, 0.4} {
		if gd := f.GroupDelay(F); math.Abs(gd-5) > 1e-3 {
			t.Fatalf("delay group delay %g at F=%g", gd, F)
		}
	}
}

func TestBandEdgesLowpass(t *testing.T) {
	f, err := DesignFIR(FIRSpec{Band: Lowpass, Taps: 63, F1: 0.2, Window: dsp.Hamming})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.BandEdges(1024)
	if lo != 0 {
		t.Fatalf("lowpass band should start at DC, got %g", lo)
	}
	if math.Abs(hi-0.2) > 0.02 {
		t.Fatalf("upper -3 dB edge %g, want about 0.2", hi)
	}
}

func TestBandEdgesBandpass(t *testing.T) {
	f, err := DesignFIR(FIRSpec{Band: Bandpass, Taps: 81, F1: 0.15, F2: 0.3, Window: dsp.Hamming})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.BandEdges(1024)
	if math.Abs(lo-0.15) > 0.02 || math.Abs(hi-0.3) > 0.02 {
		t.Fatalf("band edges [%g, %g], want about [0.15, 0.3]", lo, hi)
	}
}

func TestWriteResponse(t *testing.T) {
	f := NewFIR([]float64{0.5, 0.5}, "avg")
	var sb strings.Builder
	f.WriteResponse(&sb, 16)
	out := sb.String()
	if !strings.Contains(out, "mag(dB)") {
		t.Fatal("missing header")
	}
	lines := strings.Count(out, "\n")
	if lines != 2+9 { // 2 header lines + n/2+1 rows
		t.Fatalf("line count %d", lines)
	}
}
