package filter

import (
	"fmt"
	"math/cmplx"

	"repro/internal/dsp"
)

// FIRSpec describes a windowed-sinc FIR design.
type FIRSpec struct {
	Band   BandType
	Taps   int     // filter length (number of coefficients), >= 1
	F1     float64 // first cutoff, cycles/sample in (0, 0.5)
	F2     float64 // second cutoff for Bandpass/Bandstop, F1 < F2 < 0.5
	Window dsp.WindowType
	// Beta is the Kaiser beta when Window == dsp.Kaiser; ignored otherwise.
	Beta float64
}

// DesignFIR designs a linear-phase FIR filter by the windowed-sinc method.
// High-pass and band-stop designs require an odd number of taps (type-I
// symmetry) and are adjusted up by one tap when an even count is requested,
// matching common design-tool behaviour.
func DesignFIR(spec FIRSpec) (Filter, error) {
	if spec.Taps < 1 {
		return Filter{}, fmt.Errorf("filter: FIR taps %d < 1", spec.Taps)
	}
	if spec.F1 <= 0 || spec.F1 >= 0.5 {
		return Filter{}, fmt.Errorf("filter: cutoff F1=%g outside (0, 0.5)", spec.F1)
	}
	needsF2 := spec.Band == Bandpass || spec.Band == Bandstop
	if needsF2 && (spec.F2 <= spec.F1 || spec.F2 >= 0.5) {
		return Filter{}, fmt.Errorf("filter: cutoff F2=%g must satisfy F1 < F2 < 0.5", spec.F2)
	}
	taps := spec.Taps
	if (spec.Band == Highpass || spec.Band == Bandstop) && taps%2 == 0 {
		taps++
	}
	var h []float64
	switch spec.Band {
	case Lowpass:
		h = sincLowpass(taps, spec.F1)
	case Highpass:
		lp := sincLowpass(taps, spec.F1)
		h = spectralInvert(lp)
	case Bandpass:
		// Difference of two low-pass kernels.
		lp2 := sincLowpass(taps, spec.F2)
		lp1 := sincLowpass(taps, spec.F1)
		h = make([]float64, taps)
		for i := range h {
			h[i] = lp2[i] - lp1[i]
		}
	case Bandstop:
		lp1 := sincLowpass(taps, spec.F1)
		hp2 := spectralInvert(sincLowpass(taps, spec.F2))
		h = make([]float64, taps)
		for i := range h {
			h[i] = lp1[i] + hp2[i]
		}
	default:
		return Filter{}, fmt.Errorf("filter: unknown band type %v", spec.Band)
	}
	var w []float64
	if spec.Window == dsp.Kaiser && spec.Beta > 0 {
		w = dsp.KaiserWindow(taps, spec.Beta)
	} else {
		w = dsp.Window(spec.Window, taps)
	}
	for i := range h {
		h[i] *= w[i]
	}
	normalizeGain(h, spec)
	desc := fmt.Sprintf("%v FIR %d taps (%v window)", spec.Band, taps, spec.Window)
	return NewFIR(h, desc), nil
}

// sincLowpass returns the ideal low-pass impulse response truncated to taps
// samples centered at (taps-1)/2, cutoff fc in cycles/sample.
func sincLowpass(taps int, fc float64) []float64 {
	h := make([]float64, taps)
	center := float64(taps-1) / 2
	for i := range h {
		h[i] = 2 * fc * dsp.Sinc(2*fc*(float64(i)-center))
	}
	return h
}

// spectralInvert converts a low-pass kernel into the complementary
// high-pass: h_hp[n] = delta[n-center] - h_lp[n]. Requires odd length (an
// integer center), which DesignFIR guarantees.
func spectralInvert(h []float64) []float64 {
	out := make([]float64, len(h))
	for i, v := range h {
		out[i] = -v
	}
	out[(len(h)-1)/2] += 1
	return out
}

// normalizeGain scales the kernel so the passband center has unit gain.
func normalizeGain(h []float64, spec FIRSpec) {
	f := Filter{B: h, A: []float64{1}}
	var ref float64
	switch spec.Band {
	case Lowpass:
		ref = real(f.ResponseAt(0))
	case Highpass:
		ref = real(f.ResponseAt(0.5))
	case Bandpass:
		c := (spec.F1 + spec.F2) / 2
		ref = cmplx.Abs(f.ResponseAt(c))
	case Bandstop:
		ref = real(f.ResponseAt(0))
	}
	if ref == 0 {
		return
	}
	for i := range h {
		h[i] /= ref
	}
}
