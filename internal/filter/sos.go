package filter

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Biquad is one second-order section y[n] = b0 x + b1 x[-1] + b2 x[-2]
// - a1 y[-1] - a2 y[-2] (a0 normalized to 1).
type Biquad struct {
	B0, B1, B2 float64
	A1, A2     float64
}

// Response evaluates the section at normalized frequency F.
func (s Biquad) Response(F float64) complex128 {
	z := cmplx.Exp(complex(0, -2*math.Pi*F))
	num := complex(s.B0, 0) + complex(s.B1, 0)*z + complex(s.B2, 0)*z*z
	den := 1 + complex(s.A1, 0)*z + complex(s.A2, 0)*z*z
	return num / den
}

// IsStable reports whether the section's poles are inside the unit circle
// (the stability triangle |a2| < 1, |a1| < 1 + a2).
func (s Biquad) IsStable() bool {
	return math.Abs(s.A2) < 1 && math.Abs(s.A1) < 1+s.A2
}

// SOS is a cascade of biquads with an overall gain — the numerically robust
// realization of high-order IIR filters (direct forms amplify roundoff
// catastrophically beyond order ~10, which both fixed-point hardware and
// the double-precision simulator care about).
type SOS struct {
	Gain     float64
	Sections []Biquad
}

// Response evaluates the cascade at F.
func (c SOS) Response(F float64) complex128 {
	acc := complex(c.Gain, 0)
	for _, s := range c.Sections {
		acc *= s.Response(F)
	}
	return acc
}

// ResponseGrid samples the cascade on n uniform bins.
func (c SOS) ResponseGrid(n int) []complex128 {
	out := make([]complex128, n)
	for k := range out {
		out[k] = c.Response(float64(k) / float64(n))
	}
	return out
}

// IsStable reports whether every section is stable.
func (c SOS) IsStable() bool {
	for _, s := range c.Sections {
		if !s.IsStable() {
			return false
		}
	}
	return true
}

// Order returns the total filter order: odd-order designs carry one
// first-order section (B2 == A2 == 0), so sections are counted by their
// actual degree.
func (c SOS) Order() int {
	total := 0
	for _, s := range c.Sections {
		degB, degA := 0, 0
		switch {
		case s.B2 != 0:
			degB = 2
		case s.B1 != 0:
			degB = 1
		}
		switch {
		case s.A2 != 0:
			degA = 2
		case s.A1 != 0:
			degA = 1
		}
		if degB > degA {
			total += degB
		} else {
			total += degA
		}
	}
	return total
}

// SOSState is the cascade runtime (transposed direct-form II per section).
type SOSState struct {
	gain     float64
	sections []Biquad
	w1, w2   []float64
}

// NewSOSState builds a fresh runtime.
func NewSOSState(c SOS) *SOSState {
	return &SOSState{
		gain:     c.Gain,
		sections: append([]Biquad(nil), c.Sections...),
		w1:       make([]float64, len(c.Sections)),
		w2:       make([]float64, len(c.Sections)),
	}
}

// Step processes one sample through the cascade.
func (st *SOSState) Step(x float64) float64 {
	v := x * st.gain
	for i, s := range st.sections {
		y := s.B0*v + st.w1[i]
		st.w1[i] = s.B1*v - s.A1*y + st.w2[i]
		st.w2[i] = s.B2*v - s.A2*y
		v = y
	}
	return v
}

// Process filters a slice.
func (st *SOSState) Process(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = st.Step(v)
	}
	return out
}

// Reset clears all section states.
func (st *SOSState) Reset() {
	for i := range st.w1 {
		st.w1[i] = 0
		st.w2[i] = 0
	}
}

// DesignIIRSOS designs the same filter as DesignIIR but returns it as a
// biquad cascade built directly from the analog prototype's poles and zeros
// — avoiding the ill-conditioned polynomial expansion of high-order direct
// forms entirely. Poles are paired with the zeros nearest them (classic
// peak-limiting pairing), conjugate pairs per section, ordered by
// increasing pole radius.
func DesignIIRSOS(spec IIRSpec) (SOS, error) {
	if spec.Order < 1 {
		return SOS{}, fmt.Errorf("filter: IIR order %d < 1", spec.Order)
	}
	if spec.F1 <= 0 || spec.F1 >= 0.5 {
		return SOS{}, fmt.Errorf("filter: cutoff F1=%g outside (0, 0.5)", spec.F1)
	}
	needsF2 := spec.Band == Bandpass || spec.Band == Bandstop
	if needsF2 && (spec.F2 <= spec.F1 || spec.F2 >= 0.5) {
		return SOS{}, fmt.Errorf("filter: cutoff F2=%g must satisfy F1 < F2 < 0.5", spec.F2)
	}
	ripple := spec.RippleDB
	if ripple <= 0 {
		ripple = 1
	}
	poles, gain, err := prototypeLP(spec.Kind, spec.Order, ripple)
	if err != nil {
		return SOS{}, err
	}
	var zeros []complex128
	warp := func(F float64) float64 { return 2 * math.Tan(math.Pi*F) }
	switch spec.Band {
	case Lowpass:
		zeros, poles, gain = lpToLP(zeros, poles, gain, warp(spec.F1))
	case Highpass:
		zeros, poles, gain = lpToHP(zeros, poles, gain, warp(spec.F1))
	case Bandpass:
		w1, w2 := warp(spec.F1), warp(spec.F2)
		zeros, poles, gain = lpToBP(zeros, poles, gain, math.Sqrt(w1*w2), w2-w1)
	case Bandstop:
		w1, w2 := warp(spec.F1), warp(spec.F2)
		zeros, poles, gain = lpToBS(zeros, poles, gain, math.Sqrt(w1*w2), w2-w1)
	default:
		return SOS{}, fmt.Errorf("filter: unknown band type %v", spec.Band)
	}
	zd, pd, kd := bilinear(zeros, poles, gain)
	return zpkToSOS(zd, pd, kd)
}

// zpkToSOS groups digital zeros and poles into biquads.
func zpkToSOS(zeros, poles []complex128, gain float64) (SOS, error) {
	if len(zeros) > len(poles) {
		return SOS{}, fmt.Errorf("filter: more zeros (%d) than poles (%d)", len(zeros), len(poles))
	}
	// Pad zeros at the origin to match counts (z = 0 adds pure delay-free
	// numerator terms).
	zs := append([]complex128(nil), zeros...)
	for len(zs) < len(poles) {
		zs = append(zs, 0)
	}
	pairsP, err := conjugatePairs(poles)
	if err != nil {
		return SOS{}, err
	}
	pairsZ, err := conjugatePairs(zs)
	if err != nil {
		return SOS{}, err
	}
	if len(pairsZ) < len(pairsP) {
		pairsZ = append(pairsZ, [2]complex128{0, 0})
	}
	// Order pole pairs by radius ascending; pair each with the nearest
	// unused zero pair.
	used := make([]bool, len(pairsZ))
	cas := SOS{Gain: gain}
	for _, pp := range pairsP {
		best, bestDist := -1, math.Inf(1)
		for i, zp := range pairsZ {
			if used[i] {
				continue
			}
			d := cmplx.Abs(pp[0] - zp[0])
			if d < bestDist {
				best, bestDist = i, d
			}
		}
		if best < 0 {
			return SOS{}, fmt.Errorf("filter: zero pairing exhausted")
		}
		used[best] = true
		zp := pairsZ[best]
		cas.Sections = append(cas.Sections, pairToBiquad(zp, pp))
	}
	// Sort sections by pole radius so the high-Q section comes last
	// (minimizes intermediate signal growth).
	for i := 1; i < len(cas.Sections); i++ {
		for j := i; j > 0 && sectionRadius(cas.Sections[j]) < sectionRadius(cas.Sections[j-1]); j-- {
			cas.Sections[j], cas.Sections[j-1] = cas.Sections[j-1], cas.Sections[j]
		}
	}
	return cas, nil
}

func sectionRadius(s Biquad) float64 {
	// |a2| is the squared pole radius for conjugate pairs.
	return math.Sqrt(math.Abs(s.A2))
}

// conjugatePairs groups roots into conjugate (or real) pairs.
func conjugatePairs(roots []complex128) ([][2]complex128, error) {
	const tol = 1e-8
	var cplx []complex128
	var reals []complex128
	for _, r := range roots {
		if math.Abs(imag(r)) < tol {
			reals = append(reals, complex(real(r), 0))
		} else {
			cplx = append(cplx, r)
		}
	}
	var pairs [][2]complex128
	usedC := make([]bool, len(cplx))
	for i, r := range cplx {
		if usedC[i] {
			continue
		}
		found := false
		for j := i + 1; j < len(cplx); j++ {
			if usedC[j] {
				continue
			}
			if cmplx.Abs(cplx[j]-cmplx.Conj(r)) < tol*(1+cmplx.Abs(r)) {
				pairs = append(pairs, [2]complex128{r, cplx[j]})
				usedC[i], usedC[j] = true, true
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("filter: unpaired complex root %v", r)
		}
	}
	if len(reals)%2 != 0 {
		reals = append(reals, 0)
	}
	for i := 0; i+1 < len(reals); i += 2 {
		pairs = append(pairs, [2]complex128{reals[i], reals[i+1]})
	}
	return pairs, nil
}

// pairToBiquad expands one (zero pair, pole pair) into real coefficients.
func pairToBiquad(zp, pp [2]complex128) Biquad {
	// (1 - z1 q)(1 - z2 q) = 1 - (z1+z2) q + z1 z2 q^2 with q = z^-1.
	b1 := -real(zp[0] + zp[1])
	b2 := real(zp[0] * zp[1])
	a1 := -real(pp[0] + pp[1])
	a2 := real(pp[0] * pp[1])
	return Biquad{B0: 1, B1: b1, B2: b2, A1: a1, A2: a2}
}
