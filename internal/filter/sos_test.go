package filter

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestBiquadStabilityTriangle(t *testing.T) {
	stable := Biquad{B0: 1, A1: -1.2, A2: 0.5}
	if !stable.IsStable() {
		t.Fatal("section inside triangle reported unstable")
	}
	unstable := Biquad{B0: 1, A1: -2.1, A2: 1.2}
	if unstable.IsStable() {
		t.Fatal("section outside triangle reported stable")
	}
}

func TestSOSMatchesDirectFormResponse(t *testing.T) {
	for _, spec := range []IIRSpec{
		{Kind: Butterworth, Band: Lowpass, Order: 6, F1: 0.2},
		{Kind: Butterworth, Band: Highpass, Order: 5, F1: 0.15},
		{Kind: Butterworth, Band: Bandpass, Order: 4, F1: 0.1, F2: 0.2},
		{Kind: Chebyshev1, Band: Lowpass, Order: 5, F1: 0.25, RippleDB: 0.5},
		{Kind: Butterworth, Band: Bandstop, Order: 3, F1: 0.1, F2: 0.2},
	} {
		df, err := DesignIIR(spec)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		cas, err := DesignIIRSOS(spec)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if !cas.IsStable() {
			t.Fatalf("%+v: cascade unstable", spec)
		}
		if cas.Order() != df.Order() {
			t.Fatalf("%+v: order %d vs %d", spec, cas.Order(), df.Order())
		}
		for _, F := range []float64{0.01, 0.05, 0.12, 0.22, 0.35, 0.49} {
			a := cmplx.Abs(cas.Response(F))
			b := cmplx.Abs(df.ResponseAt(F))
			if math.Abs(a-b) > 1e-6*(1+b) {
				t.Fatalf("%+v at F=%g: sos %g vs direct %g", spec, F, a, b)
			}
		}
	}
}

func TestSOSRuntimeMatchesDirectForm(t *testing.T) {
	spec := IIRSpec{Kind: Butterworth, Band: Lowpass, Order: 6, F1: 0.2}
	df, _ := DesignIIR(spec)
	cas, _ := DesignIIRSOS(spec)
	rng := rand.New(rand.NewSource(1))
	stD := NewState(df)
	stC := NewSOSState(cas)
	for i := 0; i < 2000; i++ {
		x := rng.NormFloat64()
		yd := stD.Step(x)
		yc := stC.Step(x)
		if math.Abs(yd-yc) > 1e-9 {
			t.Fatalf("sample %d: direct %g vs sos %g", i, yd, yc)
		}
	}
}

func TestSOSNumericallyRobustHighOrder(t *testing.T) {
	// Order-10 bandpass prototype -> digital order 20: the direct form is
	// numerically fragile here (the reason the Table-I bank caps bandpass
	// orders); the cascade must remain stable and bounded.
	spec := IIRSpec{Kind: Butterworth, Band: Bandpass, Order: 10, F1: 0.0375, F2: 0.1375}
	cas, err := DesignIIRSOS(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cas.IsStable() {
		t.Fatal("high-order cascade unstable")
	}
	st := NewSOSState(cas)
	rng := rand.New(rand.NewSource(2))
	var peak float64
	for i := 0; i < 50000; i++ {
		y := st.Step(rng.Float64()*2 - 1)
		if a := math.Abs(y); a > peak {
			peak = a
		}
	}
	if peak > 10 || math.IsNaN(peak) {
		t.Fatalf("output peak %g implausible for a passive bandpass", peak)
	}
	// Passband gain ~1 at the geometric center.
	center := geomCenterDigital(0.0375, 0.1375)
	if g := cmplx.Abs(cas.Response(center)); math.Abs(g-1) > 0.05 {
		t.Fatalf("center gain %g", g)
	}
	// Deep stopband.
	if g := cmplx.Abs(cas.Response(0.45)); g > 1e-6 {
		t.Fatalf("stopband gain %g", g)
	}
}

func TestSOSSectionOrdering(t *testing.T) {
	cas, err := DesignIIRSOS(IIRSpec{Kind: Butterworth, Band: Lowpass, Order: 8, F1: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cas.Sections); i++ {
		if sectionRadius(cas.Sections[i]) < sectionRadius(cas.Sections[i-1])-1e-12 {
			t.Fatal("sections not ordered by pole radius")
		}
	}
}

func TestSOSStateReset(t *testing.T) {
	cas, _ := DesignIIRSOS(IIRSpec{Kind: Butterworth, Band: Lowpass, Order: 4, F1: 0.2})
	st := NewSOSState(cas)
	first := st.Process([]float64{1, 0.5, -0.5, 0.25})
	st.Reset()
	second := st.Process([]float64{1, 0.5, -0.5, 0.25})
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("reset did not clear state")
		}
	}
}

func TestDesignIIRSOSErrors(t *testing.T) {
	bad := []IIRSpec{
		{Kind: Butterworth, Band: Lowpass, Order: 0, F1: 0.2},
		{Kind: Butterworth, Band: Lowpass, Order: 4, F1: 0.7},
		{Kind: Butterworth, Band: Bandpass, Order: 4, F1: 0.3, F2: 0.2},
	}
	for _, s := range bad {
		if _, err := DesignIIRSOS(s); err == nil {
			t.Errorf("spec %+v should fail", s)
		}
	}
}

func TestResponseGrid(t *testing.T) {
	cas, _ := DesignIIRSOS(IIRSpec{Kind: Butterworth, Band: Lowpass, Order: 4, F1: 0.2})
	grid := cas.ResponseGrid(32)
	if len(grid) != 32 {
		t.Fatalf("grid length %d", len(grid))
	}
	for k, v := range grid {
		want := cas.Response(float64(k) / 32)
		if cmplx.Abs(v-want) > 1e-12 {
			t.Fatalf("bin %d mismatch", k)
		}
	}
}

func BenchmarkSOSStep20(b *testing.B) {
	cas, _ := DesignIIRSOS(IIRSpec{Kind: Butterworth, Band: Bandpass, Order: 10, F1: 0.05, F2: 0.15})
	st := NewSOSState(cas)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Step(float64(i&3) - 1.5)
	}
}
