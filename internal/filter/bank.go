package filter

import (
	"fmt"

	"repro/internal/dsp"
)

// BankSpec parameterizes the Table-I filter banks: the paper evaluates 147
// FIR filters (3 band types x taps from 16 to 128) and 147 IIR filters
// (3 band types x orders 2 to 10), each over several cutoff variants.
// 3 bands x 7 sizes x 7 cutoff variants = 147.
type BankSpec struct {
	Bands    []BandType
	Sizes    []int     // tap counts (FIR) or orders (IIR)
	Cutoffs  []float64 // base cutoff frequencies, cycles/sample
	IIRKind  IIRKind
	RippleDB float64
}

// DefaultFIRBank returns the 147-filter FIR bank specification.
func DefaultFIRBank() BankSpec {
	return BankSpec{
		Bands:   []BandType{Lowpass, Highpass, Bandpass},
		Sizes:   []int{16, 24, 32, 48, 64, 96, 128},
		Cutoffs: []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35},
	}
}

// DefaultIIRBank returns the 147-filter IIR bank specification with orders
// 2..10 in the paper's range.
func DefaultIIRBank() BankSpec {
	return BankSpec{
		Bands:   []BandType{Lowpass, Highpass, Bandpass},
		Sizes:   []int{2, 3, 4, 5, 6, 8, 10},
		Cutoffs: []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35},
		IIRKind: Butterworth,
	}
}

// BuildFIRBank materializes every FIR filter in the spec. The returned
// count is len(Bands) * len(Sizes) * len(Cutoffs).
func BuildFIRBank(spec BankSpec) ([]Filter, error) {
	out := make([]Filter, 0, len(spec.Bands)*len(spec.Sizes)*len(spec.Cutoffs))
	for _, band := range spec.Bands {
		for _, taps := range spec.Sizes {
			for _, fc := range spec.Cutoffs {
				fs := FIRSpec{Band: band, Taps: taps, F1: fc, Window: dsp.Hamming}
				if band == Bandpass || band == Bandstop {
					fs.F1 = fc * 0.75
					fs.F2 = fc*0.75 + 0.1
				}
				f, err := DesignFIR(fs)
				if err != nil {
					return nil, fmt.Errorf("filter: bank member %v/%d/%g: %w", band, taps, fc, err)
				}
				out = append(out, f)
			}
		}
	}
	return out, nil
}

// BuildIIRBank materializes every IIR filter in the spec, skipping any
// design that comes out unstable (none do for the default bank; the check
// guards custom specs).
func BuildIIRBank(spec BankSpec) ([]Filter, error) {
	out := make([]Filter, 0, len(spec.Bands)*len(spec.Sizes)*len(spec.Cutoffs))
	for _, band := range spec.Bands {
		for _, order := range spec.Sizes {
			for _, fc := range spec.Cutoffs {
				is := IIRSpec{Kind: spec.IIRKind, Band: band, Order: order, F1: fc, RippleDB: spec.RippleDB}
				if band == Bandpass || band == Bandstop {
					// Band transforms double the prototype order; halve it
					// so the digital order stays within the paper's 2-10
					// range (and direct-form arithmetic stays sane).
					is.Order = (order + 1) / 2
					is.F1 = fc * 0.75
					is.F2 = fc*0.75 + 0.1
				}
				f, err := DesignIIR(is)
				if err != nil {
					return nil, fmt.Errorf("filter: bank member %v/%d/%g: %w", band, order, fc, err)
				}
				if !f.IsStable() {
					return nil, fmt.Errorf("filter: bank member %v/%d/%g unstable", band, order, fc)
				}
				out = append(out, f)
			}
		}
	}
	return out, nil
}
