package filter

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IIRKind selects the analog prototype family.
type IIRKind int

const (
	// Butterworth prototypes are maximally flat in the passband.
	Butterworth IIRKind = iota
	// Chebyshev1 prototypes have equiripple passband; the ripple is set by
	// IIRSpec.RippleDB.
	Chebyshev1
)

// String implements fmt.Stringer.
func (k IIRKind) String() string {
	switch k {
	case Butterworth:
		return "butterworth"
	case Chebyshev1:
		return "chebyshev1"
	default:
		return fmt.Sprintf("IIRKind(%d)", int(k))
	}
}

// IIRSpec describes an IIR design: an analog prototype of the given order
// warped through the bilinear transform.
type IIRSpec struct {
	Kind  IIRKind
	Band  BandType
	Order int     // prototype order; Bandpass/Bandstop double it
	F1    float64 // cutoff (or lower edge), cycles/sample in (0, 0.5)
	F2    float64 // upper edge for Bandpass/Bandstop
	// RippleDB is the Chebyshev-I passband ripple (default 1 dB when 0).
	RippleDB float64
}

// DesignIIR designs a digital IIR filter from the analog prototype using the
// bilinear transform with frequency prewarping.
func DesignIIR(spec IIRSpec) (Filter, error) {
	if spec.Order < 1 {
		return Filter{}, fmt.Errorf("filter: IIR order %d < 1", spec.Order)
	}
	if spec.F1 <= 0 || spec.F1 >= 0.5 {
		return Filter{}, fmt.Errorf("filter: cutoff F1=%g outside (0, 0.5)", spec.F1)
	}
	needsF2 := spec.Band == Bandpass || spec.Band == Bandstop
	if needsF2 && (spec.F2 <= spec.F1 || spec.F2 >= 0.5) {
		return Filter{}, fmt.Errorf("filter: cutoff F2=%g must satisfy F1 < F2 < 0.5", spec.F2)
	}
	ripple := spec.RippleDB
	if ripple <= 0 {
		ripple = 1
	}
	// Analog low-pass prototype poles (cutoff 1 rad/s) and gain.
	poles, gain, err := prototypeLP(spec.Kind, spec.Order, ripple)
	if err != nil {
		return Filter{}, err
	}
	// Prototype zeros: none (all at infinity) for both families.
	var zeros []complex128

	// Prewarp the digital band edges to analog frequencies (T = 1).
	warp := func(F float64) float64 { return 2 * math.Tan(math.Pi*F) }

	switch spec.Band {
	case Lowpass:
		w := warp(spec.F1)
		zeros, poles, gain = lpToLP(zeros, poles, gain, w)
	case Highpass:
		w := warp(spec.F1)
		zeros, poles, gain = lpToHP(zeros, poles, gain, w)
	case Bandpass:
		w1, w2 := warp(spec.F1), warp(spec.F2)
		zeros, poles, gain = lpToBP(zeros, poles, gain, math.Sqrt(w1*w2), w2-w1)
	case Bandstop:
		w1, w2 := warp(spec.F1), warp(spec.F2)
		zeros, poles, gain = lpToBS(zeros, poles, gain, math.Sqrt(w1*w2), w2-w1)
	default:
		return Filter{}, fmt.Errorf("filter: unknown band type %v", spec.Band)
	}

	zd, pd, kd := bilinear(zeros, poles, gain)
	b := polyFromRoots(zd)
	a := polyFromRoots(pd)
	fb := make([]float64, len(b))
	fa := make([]float64, len(a))
	for i, c := range b {
		fb[i] = real(c) * kd
	}
	for i, c := range a {
		fa[i] = real(c)
	}
	f := Filter{
		B:    fb,
		A:    fa,
		Desc: fmt.Sprintf("%v %v order %d", spec.Kind, spec.Band, spec.Order),
	}.Normalize()

	// Normalize passband gain: Chebyshev even orders sit at -ripple dB at
	// DC by construction; keep design-tool convention (no extra scaling).
	return f, nil
}

// prototypeLP returns the poles and gain of the unit-cutoff analog low-pass
// prototype: H(s) = gain / prod(s - p_i).
func prototypeLP(kind IIRKind, order int, rippleDB float64) ([]complex128, float64, error) {
	switch kind {
	case Butterworth:
		poles := make([]complex128, order)
		for k := 0; k < order; k++ {
			theta := math.Pi * (2*float64(k) + 1 + float64(order)) / (2 * float64(order))
			poles[k] = cmplx.Exp(complex(0, theta))
		}
		// gain = prod(-p) = 1 for unit-cutoff Butterworth.
		return poles, 1, nil
	case Chebyshev1:
		eps := math.Sqrt(math.Pow(10, rippleDB/10) - 1)
		mu := math.Asinh(1/eps) / float64(order)
		poles := make([]complex128, order)
		for k := 0; k < order; k++ {
			theta := math.Pi * (2*float64(k) + 1) / (2 * float64(order))
			poles[k] = complex(-math.Sinh(mu)*math.Sin(theta), math.Cosh(mu)*math.Cos(theta))
		}
		gain := 1.0
		prod := complex(1, 0)
		for _, p := range poles {
			prod *= -p
		}
		gain = real(prod)
		if order%2 == 0 {
			gain /= math.Sqrt(1 + eps*eps)
		}
		return poles, gain, nil
	default:
		return nil, 0, fmt.Errorf("filter: unknown IIR kind %v", kind)
	}
}

// lpToLP scales the prototype to cutoff w0.
func lpToLP(z, p []complex128, k float64, w0 float64) ([]complex128, []complex128, float64) {
	nz := scaleRoots(z, w0)
	np := scaleRoots(p, w0)
	// Gain scales by w0^(len(p)-len(z)) to keep unit passband gain.
	k *= math.Pow(w0, float64(len(p)-len(z)))
	return nz, np, k
}

// lpToHP maps s -> w0/s.
func lpToHP(z, p []complex128, k float64, w0 float64) ([]complex128, []complex128, float64) {
	nz := make([]complex128, 0, len(p))
	np := make([]complex128, len(p))
	prodZ, prodP := complex(1, 0), complex(1, 0)
	for _, zi := range z {
		prodZ *= -zi
	}
	for i, pi := range p {
		np[i] = complex(w0, 0) / pi
		prodP *= -pi
	}
	for _, zi := range z {
		nz = append(nz, complex(w0, 0)/zi)
	}
	// Degree difference adds zeros at s=0.
	for i := 0; i < len(p)-len(z); i++ {
		nz = append(nz, 0)
	}
	// k_hp = k * prod(-z)/prod(-p) (real for real filters).
	if len(z) == 0 {
		k *= real(complex(1, 0) / prodP)
	} else {
		k *= real(prodZ / prodP)
	}
	return nz, np, k
}

// lpToBP maps s -> (s^2 + w0^2)/(bw*s); prototype order doubles.
func lpToBP(z, p []complex128, k float64, w0, bw float64) ([]complex128, []complex128, float64) {
	degree := len(p) - len(z)
	nz := make([]complex128, 0, 2*len(z)+degree)
	np := make([]complex128, 0, 2*len(p))
	for _, zi := range z {
		a, b := quadRoots(zi, w0, bw)
		nz = append(nz, a, b)
	}
	for _, pi := range p {
		a, b := quadRoots(pi, w0, bw)
		np = append(np, a, b)
	}
	for i := 0; i < degree; i++ {
		nz = append(nz, 0)
	}
	k *= math.Pow(bw, float64(degree))
	return nz, np, k
}

// lpToBS maps s -> (bw*s)/(s^2 + w0^2).
func lpToBS(z, p []complex128, k float64, w0, bw float64) ([]complex128, []complex128, float64) {
	degree := len(p) - len(z)
	nz := make([]complex128, 0, 2*len(p))
	np := make([]complex128, 0, 2*len(p))
	prodZ, prodP := complex(1, 0), complex(1, 0)
	for _, zi := range z {
		prodZ *= -zi
		inv := complex(1, 0) / zi
		a, b := quadRoots(inv, w0, bw)
		nz = append(nz, a, b)
	}
	for _, pi := range p {
		prodP *= -pi
		inv := complex(1, 0) / pi
		a, b := quadRoots(inv, w0, bw)
		np = append(np, a, b)
	}
	// Degree difference adds zero pairs at +-j*w0.
	for i := 0; i < degree; i++ {
		nz = append(nz, complex(0, w0), complex(0, -w0))
	}
	if len(z) == 0 {
		k *= real(complex(1, 0) / prodP)
	} else {
		k *= real(prodZ / prodP)
	}
	return nz, np, k
}

// quadRoots solves s^2 - (r*bw) s + w0^2 = 0 for the band transform of root
// r, returning both roots.
func quadRoots(r complex128, w0, bw float64) (complex128, complex128) {
	half := r * complex(bw/2, 0)
	d := cmplx.Sqrt(half*half - complex(w0*w0, 0))
	return half + d, half - d
}

func scaleRoots(r []complex128, s float64) []complex128 {
	out := make([]complex128, len(r))
	for i, v := range r {
		out[i] = v * complex(s, 0)
	}
	return out
}

// bilinear maps analog zeros/poles/gain to digital via s = 2(z-1)/(z+1)
// (sampling period T = 1, matching the prewarp in DesignIIR).
func bilinear(z, p []complex128, k float64) ([]complex128, []complex128, float64) {
	const fs2 = 2.0 // 2/T
	zd := make([]complex128, 0, len(p))
	pd := make([]complex128, len(p))
	num, den := complex(1, 0), complex(1, 0)
	for _, zi := range z {
		zd = append(zd, (complex(fs2, 0)+zi)/(complex(fs2, 0)-zi))
		num *= complex(fs2, 0) - zi
	}
	for i, pi := range p {
		pd[i] = (complex(fs2, 0) + pi) / (complex(fs2, 0) - pi)
		den *= complex(fs2, 0) - pi
	}
	// Analog zeros at infinity map to z = -1.
	for i := 0; i < len(p)-len(z); i++ {
		zd = append(zd, -1)
	}
	kd := k * real(num/den)
	return zd, pd, kd
}

// polyFromRoots expands prod(x - r_i) into coefficients ordered from x^0's
// companion [1, c1, c2, ...] in z^-1 form: the returned slice c satisfies
// P(z) = c[0] + c[1] z^-1 + ... with c[0] == 1, i.e. it is the polynomial
// prod(1 - r_i z^-1).
func polyFromRoots(roots []complex128) []complex128 {
	c := make([]complex128, 1, len(roots)+1)
	c[0] = 1
	for _, r := range roots {
		c = append(c, 0)
		for i := len(c) - 1; i >= 1; i-- {
			c[i] -= r * c[i-1]
		}
	}
	return c
}

// IsStable reports whether all poles of the filter lie strictly inside the
// unit circle, using the Schur-Cohn (reflection-coefficient) recursion on
// the denominator. FIR filters are always stable.
func (f Filter) IsStable() bool {
	a := f.Normalize().A
	// Strip trailing zero coefficients.
	n := len(a)
	for n > 1 && a[n-1] == 0 {
		n--
	}
	a = a[:n]
	if len(a) == 1 {
		return true
	}
	// Schur-Cohn: recursively compute reflection coefficients; all must
	// have magnitude < 1.
	cur := append([]float64(nil), a...)
	for len(cur) > 1 {
		m := len(cur) - 1
		k := cur[m] / cur[0]
		if math.Abs(k) >= 1 {
			return false
		}
		next := make([]float64, m)
		den := 1 - k*k
		for i := 0; i < m; i++ {
			next[i] = (cur[i] - k*cur[m-i]) / den
		}
		cur = next
	}
	return true
}
