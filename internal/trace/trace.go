// Package trace is a dependency-free span recorder for the serving tier.
// A Trace is a tree of parented Spans (name, start, duration, string
// attrs) identified by a process-minted hex trace ID; a Recorder keeps a
// bounded ring of recent traces plus a small list of the slowest ones so
// a stalled or slow request can be inspected after the fact via
// GET /v1/jobs/{id}/trace or /debug/traces.
//
// The design goal is zero cost when tracing is off: every *Span and
// *Trace method is a no-op on a nil receiver, so call sites thread spans
// unconditionally and pay only a nil check on the untraced path. Traces
// cross process boundaries over HTTP via the X-Wlopt-Trace header
// ("<trace-id>" or "<trace-id>:<parent-span-hex>"); span IDs embed a
// per-process random tag so the router can stitch a backend's span tree
// onto its own proxy spans without collisions.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the HTTP propagation header. Its value is either a bare
// trace ID or "<trace-id>:<parent-span-id-hex>" when the sender has an
// open span the receiver should parent under.
const Header = "X-Wlopt-Trace"

var (
	// procTag seeds trace and span IDs so two processes (router and
	// backend) never mint colliding span IDs within one stitched trace.
	procTag  uint32
	traceSeq atomic.Uint64
	spanSeq  atomic.Uint64
)

func init() {
	var b [4]byte
	if _, err := rand.Read(b[:]); err == nil {
		procTag = binary.BigEndian.Uint32(b[:])
	} else {
		procTag = uint32(time.Now().UnixNano())
	}
}

func newTraceID() string {
	return fmt.Sprintf("%08x%08x", procTag, uint32(traceSeq.Add(1)))
}

func newSpanID() uint64 {
	return uint64(procTag)<<32 | uint64(uint32(spanSeq.Add(1)))
}

// validID accepts IDs safe to log and echo: short, single-line, and
// drawn from a conservative alphabet (inbound headers are untrusted).
func validID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// RecorderConfig bounds a Recorder's memory.
type RecorderConfig struct {
	// Recent is how many traces the FIFO ring retains (finished or
	// in flight). <= 0 selects 2048 — enough to cover the job history
	// plus ambient health probes between scrapes.
	Recent int
	// SpansPerTrace caps spans recorded per trace; extra spans are
	// counted as dropped. <= 0 selects 256.
	SpansPerTrace int
	// Slowest is how many slowest traces are pinned beyond the ring.
	// <= 0 selects 32.
	Slowest int
}

// Recorder retains recent traces in a FIFO ring and pins the slowest
// ones past eviction. All methods are safe for concurrent use.
type Recorder struct {
	cfg RecorderConfig

	mu     sync.Mutex
	traces map[string]*Trace
	order  []string // FIFO of ring-pinned trace IDs
	slow   []*Trace // sorted by slowDur, descending
}

// NewRecorder creates a Recorder with the given bounds.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Recent <= 0 {
		cfg.Recent = 2048
	}
	if cfg.SpansPerTrace <= 0 {
		cfg.SpansPerTrace = 256
	}
	if cfg.Slowest <= 0 {
		cfg.Slowest = 32
	}
	return &Recorder{cfg: cfg, traces: make(map[string]*Trace)}
}

// StartTrace registers a trace under id, minting a fresh ID when id is
// empty or malformed. If the recorder already holds id — a second
// request carrying the same header — the existing trace is joined so
// all spans land in one tree.
func (r *Recorder) StartTrace(id string) *Trace {
	if !validID(id) {
		id = newTraceID()
	}
	t := &Trace{id: id, rec: r, start: time.Now(), spanCap: r.cfg.SpansPerTrace}
	r.mu.Lock()
	if cur, ok := r.traces[id]; ok {
		r.mu.Unlock()
		return cur
	}
	t.inRing = true
	r.traces[id] = t
	r.order = append(r.order, id)
	if len(r.order) > r.cfg.Recent {
		old := r.order[0]
		r.order = r.order[1:]
		if ot := r.traces[old]; ot != nil {
			ot.inRing = false
			if !ot.inSlow {
				delete(r.traces, old)
			}
		}
	}
	r.mu.Unlock()
	return t
}

// noteSlow promotes t into the slowest list when dur beats its record.
// Called on every span end; the fast path is one lock and a compare.
func (r *Recorder) noteSlow(t *Trace, dur time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if dur <= t.slowDur {
		return
	}
	if !t.inSlow && len(r.slow) >= r.cfg.Slowest && dur <= r.slow[len(r.slow)-1].slowDur {
		t.slowDur = dur // remember, but below the bar
		return
	}
	t.slowDur = dur
	if !t.inSlow {
		t.inSlow = true
		r.slow = append(r.slow, t)
	}
	sort.SliceStable(r.slow, func(i, j int) bool { return r.slow[i].slowDur > r.slow[j].slowDur })
	if len(r.slow) > r.cfg.Slowest {
		last := r.slow[len(r.slow)-1]
		r.slow = r.slow[:len(r.slow)-1]
		last.inSlow = false
		if !last.inRing {
			delete(r.traces, last.id)
		}
	}
}

// Snapshot returns the wire form of the trace with the given ID, or
// false if it was never recorded or has been evicted.
func (r *Recorder) Snapshot(id string) (*Info, bool) {
	r.mu.Lock()
	t := r.traces[id]
	r.mu.Unlock()
	if t == nil {
		return nil, false
	}
	return t.snapshot(), true
}

// Slowest returns summaries of the slowest recorded traces, slowest
// first, up to n (n <= 0 returns all pinned).
func (r *Recorder) Slowest(n int) []Summary {
	r.mu.Lock()
	ts := append([]*Trace(nil), r.slow...)
	r.mu.Unlock()
	if n > 0 && len(ts) > n {
		ts = ts[:n]
	}
	out := make([]Summary, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.summary())
	}
	return out
}

// Recent returns summaries of the most recently started traces, newest
// first, up to n (n <= 0 selects 64).
func (r *Recorder) Recent(n int) []Summary {
	if n <= 0 {
		n = 64
	}
	r.mu.Lock()
	ids := r.order
	if len(ids) > n {
		ids = ids[len(ids)-n:]
	}
	ts := make([]*Trace, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		if t := r.traces[ids[i]]; t != nil {
			ts = append(ts, t)
		}
	}
	r.mu.Unlock()
	out := make([]Summary, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.summary())
	}
	return out
}

// Trace is one request's span tree. Create spans with StartSpan; the
// zero trace is unusable — always go through a Recorder.
type Trace struct {
	id      string
	rec     *Recorder
	start   time.Time
	spanCap int

	// Guarded by rec.mu, not mu: ring/slow-list bookkeeping.
	inRing  bool
	inSlow  bool
	slowDur time.Duration

	mu      sync.Mutex
	spans   []*Span
	dropped int
}

// ID returns the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a span parented under parent (nil parent = root).
// Safe on a nil trace: returns a nil span, whose methods are no-ops.
func (t *Trace) StartSpan(name string, parent *Span) *Span {
	var pid uint64
	if parent != nil {
		pid = parent.id
	}
	return t.startSpan(name, pid, time.Now())
}

// StartSpanAt is StartSpan with an explicit start time, for phases whose
// cost is only known after the fact (e.g. a plan build detected by a
// cache-population probe).
func (t *Trace) StartSpanAt(name string, parent *Span, at time.Time) *Span {
	var pid uint64
	if parent != nil {
		pid = parent.id
	}
	return t.startSpan(name, pid, at)
}

// StartSpanRemote opens a span whose parent is a span ID received over
// the wire (0 = root) — the receiving half of header propagation.
func (t *Trace) StartSpanRemote(name string, parent uint64) *Span {
	return t.startSpan(name, parent, time.Now())
}

func (t *Trace) startSpan(name string, parent uint64, at time.Time) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, id: newSpanID(), parent: parent, name: name, start: at}
	t.mu.Lock()
	if len(t.spans) >= t.spanCap {
		t.dropped++
		t.mu.Unlock()
		s.skip = true // still usable by the caller, just not retained
		return s
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

func (t *Trace) snapshot() *Info {
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	dropped := t.dropped
	t.mu.Unlock()
	in := &Info{TraceID: t.id, Dropped: dropped, Spans: make([]SpanInfo, 0, len(spans))}
	for _, s := range spans {
		in.Spans = append(in.Spans, s.info())
	}
	sort.SliceStable(in.Spans, func(i, j int) bool { return in.Spans[i].Start.Before(in.Spans[j].Start) })
	return in
}

func (t *Trace) summary() Summary {
	sum := Summary{TraceID: t.id, Start: t.start}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	sum.Dropped = t.dropped
	t.mu.Unlock()
	sum.Spans = len(spans)
	for _, s := range spans {
		inf := s.info()
		if inf.InProgress {
			sum.Active++
			continue
		}
		if inf.DurationS > sum.MaxDurationS {
			sum.MaxDurationS = inf.DurationS
			sum.MaxSpan = inf.Name
		}
	}
	return sum
}

// Span is one timed phase within a trace. All methods are no-ops on a
// nil receiver so untraced paths cost a single nil check.
type Span struct {
	tr     *Trace
	id     uint64
	parent uint64
	name   string
	start  time.Time
	skip   bool // over the trace's span cap; not retained

	mu    sync.Mutex
	attrs []Attr
	dur   time.Duration
	ended bool
}

// Attr is one key/value annotation on a span.
type Attr struct{ K, V string }

// ID returns the span's process-unique ID (0 on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Trace returns the owning trace (nil on a nil span).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// SetAttr annotates the span. Later duplicates of a key win at render.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{K: key, V: val})
	s.mu.Unlock()
}

// End stamps the span's duration. Idempotent; safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	dur := s.dur
	s.mu.Unlock()
	if !s.skip {
		s.tr.rec.noteSlow(s.tr, dur)
	}
}

func (s *Span) info() SpanInfo {
	s.mu.Lock()
	inf := SpanInfo{
		ID:    fmt.Sprintf("%016x", s.id),
		Name:  s.name,
		Start: s.start,
	}
	if s.parent != 0 {
		inf.Parent = fmt.Sprintf("%016x", s.parent)
	}
	if s.ended {
		inf.DurationS = s.dur.Seconds()
	} else {
		inf.DurationS = time.Since(s.start).Seconds()
		inf.InProgress = true
	}
	if len(s.attrs) > 0 {
		inf.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			inf.Attrs[a.K] = a.V
		}
	}
	s.mu.Unlock()
	return inf
}

// Info is the wire form of a trace: GET /v1/jobs/{id}/trace returns one.
type Info struct {
	TraceID string     `json:"trace_id"`
	Spans   []SpanInfo `json:"spans"`
	Dropped int        `json:"dropped,omitempty"`
}

// SpanInfo is the wire form of one span. IDs are 16-hex-digit strings so
// JSON consumers never face 64-bit integer precision loss.
type SpanInfo struct {
	ID         string            `json:"id"`
	Parent     string            `json:"parent,omitempty"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationS  float64           `json:"duration_s"`
	InProgress bool              `json:"in_progress,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Summary is one row in the /debug/traces listing.
type Summary struct {
	TraceID      string    `json:"trace_id"`
	Start        time.Time `json:"start"`
	Spans        int       `json:"spans"`
	Active       int       `json:"active,omitempty"`
	Dropped      int       `json:"dropped,omitempty"`
	MaxSpan      string    `json:"max_span,omitempty"`
	MaxDurationS float64   `json:"max_duration_s"`
}

// Merge combines span sets recorded by different processes for the same
// request — the router lays its proxy spans alongside the backend's tree.
// The first non-nil Info's trace ID wins; spans are ordered by start.
func Merge(infos ...*Info) *Info {
	out := &Info{}
	for _, in := range infos {
		if in == nil {
			continue
		}
		if out.TraceID == "" {
			out.TraceID = in.TraceID
		}
		out.Spans = append(out.Spans, in.Spans...)
		out.Dropped += in.Dropped
	}
	sort.SliceStable(out.Spans, func(i, j int) bool { return out.Spans[i].Start.Before(out.Spans[j].Start) })
	return out
}

// Tree renders the span tree as indented text, one span per line:
//
//	http.submit 1.2ms {code=202}
//	  job 340ms {strategy=tabu}
//	    queue.wait 1.1ms
//
// Spans whose parents are absent (e.g. dropped, or the remote half of a
// partial stitch) are printed as roots.
func (in *Info) Tree() string {
	if in == nil {
		return ""
	}
	byID := make(map[string]bool, len(in.Spans))
	kids := make(map[string][]int, len(in.Spans))
	var roots []int
	for _, s := range in.Spans {
		byID[s.ID] = true
	}
	for i, s := range in.Spans {
		if s.Parent != "" && byID[s.Parent] {
			kids[s.Parent] = append(kids[s.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans", in.TraceID, len(in.Spans))
	if in.Dropped > 0 {
		fmt.Fprintf(&b, ", %d dropped", in.Dropped)
	}
	b.WriteString(")\n")
	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := in.Spans[i]
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString(s.Name)
		if s.InProgress {
			fmt.Fprintf(&b, " …%s", fmtDur(s.DurationS))
		} else {
			fmt.Fprintf(&b, " %s", fmtDur(s.DurationS))
		}
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteString(" {")
			for i, k := range keys {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s=%s", k, s.Attrs[k])
			}
			b.WriteByte('}')
		}
		b.WriteByte('\n')
		for _, c := range kids[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

func fmtDur(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}
