package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeSnapshot(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	tr := rec.StartTrace("")
	if tr.ID() == "" {
		t.Fatal("minted trace has empty ID")
	}
	root := tr.StartSpan("http.submit", nil)
	root.SetAttr("route", "submit")
	child := tr.StartSpan("job", root)
	grand := tr.StartSpan("queue.wait", child)
	grand.End()
	child.End()
	root.End()

	in, ok := rec.Snapshot(tr.ID())
	if !ok {
		t.Fatal("trace not found after recording")
	}
	if len(in.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(in.Spans))
	}
	byName := map[string]SpanInfo{}
	for _, s := range in.Spans {
		byName[s.Name] = s
	}
	if byName["http.submit"].Parent != "" {
		t.Errorf("root has parent %q", byName["http.submit"].Parent)
	}
	if byName["job"].Parent != byName["http.submit"].ID {
		t.Errorf("job parent = %q, want %q", byName["job"].Parent, byName["http.submit"].ID)
	}
	if byName["queue.wait"].Parent != byName["job"].ID {
		t.Errorf("queue.wait parent = %q, want %q", byName["queue.wait"].Parent, byName["job"].ID)
	}
	if byName["http.submit"].Attrs["route"] != "submit" {
		t.Errorf("attrs = %v", byName["http.submit"].Attrs)
	}
	if byName["http.submit"].InProgress {
		t.Error("ended span marked in progress")
	}
	tree := in.Tree()
	if !strings.Contains(tree, "queue.wait") || !strings.Contains(tree, in.TraceID) {
		t.Errorf("tree rendering missing content:\n%s", tree)
	}
}

func TestNilSpanAndTraceAreNoOps(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Error("nil trace ID not empty")
	}
	sp := tr.StartSpan("x", nil)
	if sp != nil {
		t.Fatal("nil trace minted a span")
	}
	// All of these must not panic.
	sp.SetAttr("k", "v")
	sp.End()
	sp.End()
	if sp.ID() != 0 || sp.Trace() != nil {
		t.Error("nil span has identity")
	}
	ctx := With(context.Background(), sp)
	if got := SpanFrom(ctx); got != nil {
		t.Errorf("SpanFrom = %v, want nil", got)
	}
	child, ctx2 := Start(ctx, "child")
	if child != nil || ctx2 != ctx {
		t.Error("Start without active span allocated")
	}
	if SpanFrom(nil) != nil {
		t.Error("SpanFrom(nil ctx) != nil")
	}
}

func TestSpanCapDropsAndCounts(t *testing.T) {
	rec := NewRecorder(RecorderConfig{SpansPerTrace: 4})
	tr := rec.StartTrace("")
	for i := 0; i < 10; i++ {
		sp := tr.StartSpan(fmt.Sprintf("s%d", i), nil)
		sp.SetAttr("i", fmt.Sprint(i)) // must be safe on over-cap spans
		sp.End()
	}
	in, _ := rec.Snapshot(tr.ID())
	if len(in.Spans) != 4 {
		t.Errorf("retained %d spans, want 4", len(in.Spans))
	}
	if in.Dropped != 6 {
		t.Errorf("dropped = %d, want 6", in.Dropped)
	}
}

func TestRecentRingEvictsButSlowestPins(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Recent: 4, Slowest: 2})
	slow := rec.StartTrace("slowtrace")
	sp := slow.StartSpanAt("big", nil, time.Now().Add(-time.Second))
	sp.End()
	var lastID string
	for i := 0; i < 10; i++ {
		tr := rec.StartTrace("")
		s := tr.StartSpan("tiny", nil)
		s.End()
		lastID = tr.ID()
	}
	if _, ok := rec.Snapshot("slowtrace"); !ok {
		t.Error("slow trace evicted despite slowest pin")
	}
	if _, ok := rec.Snapshot(lastID); !ok {
		t.Error("most recent trace missing")
	}
	sl := rec.Slowest(0)
	if len(sl) == 0 || sl[0].TraceID != "slowtrace" {
		t.Errorf("slowest = %+v, want slowtrace first", sl)
	}
	if sl[0].MaxSpan != "big" || sl[0].MaxDurationS < 0.9 {
		t.Errorf("slowest summary = %+v", sl[0])
	}
}

func TestStartTraceJoinsExisting(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	a := rec.StartTrace("sameid")
	b := rec.StartTrace("sameid")
	if a != b {
		t.Fatal("same ID produced distinct traces")
	}
	a.StartSpan("x", nil).End()
	b.StartSpan("y", nil).End()
	in, _ := rec.Snapshot("sameid")
	if len(in.Spans) != 2 {
		t.Errorf("joined trace has %d spans, want 2", len(in.Spans))
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	tr := rec.StartTrace("")
	sp := tr.StartSpan("client", nil)
	h := http.Header{}
	Inject(With(context.Background(), sp), h)
	id, parent, ok := Extract(h)
	if !ok || id != tr.ID() || parent != sp.ID() {
		t.Fatalf("Extract = (%q, %x, %v), want (%q, %x, true)", id, parent, ok, tr.ID(), sp.ID())
	}

	// Receiver side: join and parent under the remote span.
	rec2 := NewRecorder(RecorderConfig{})
	tr2 := rec2.StartTrace(id)
	srv := tr2.StartSpanRemote("server", parent)
	srv.End()
	in, _ := rec2.Snapshot(id)
	if in.TraceID != tr.ID() {
		t.Errorf("remote trace ID = %q, want %q", in.TraceID, tr.ID())
	}
	if in.Spans[0].Parent != fmt.Sprintf("%016x", sp.ID()) {
		t.Errorf("remote parent = %q", in.Spans[0].Parent)
	}

	// Garbage headers are rejected.
	for _, bad := range []string{"", "has space", "bad\nnewline", strings.Repeat("a", 65) + ":00"} {
		h := http.Header{}
		if bad != "" {
			h.Set(Header, bad)
		}
		if _, _, ok := Extract(h); ok {
			t.Errorf("Extract accepted %q", bad)
		}
	}
	// Bare ID without span suffix is fine.
	h2 := http.Header{}
	h2.Set(Header, "abc123")
	id2, p2, ok2 := Extract(h2)
	if !ok2 || id2 != "abc123" || p2 != 0 {
		t.Errorf("bare header = (%q, %x, %v)", id2, p2, ok2)
	}
}

func TestMergeStitchesAcrossProcesses(t *testing.T) {
	// Router half.
	rrec := NewRecorder(RecorderConfig{})
	rtr := rrec.StartTrace("")
	proxy := rtr.StartSpan("proxy", nil)

	// Backend half joins via the header and parents under the proxy span.
	brec := NewRecorder(RecorderConfig{})
	btr := brec.StartTrace(rtr.ID())
	httpSp := btr.StartSpanRemote("http.submit", proxy.ID())
	job := btr.StartSpan("job", httpSp)
	job.End()
	httpSp.End()
	proxy.End()

	own, _ := rrec.Snapshot(rtr.ID())
	remote, _ := brec.Snapshot(rtr.ID())
	merged := Merge(own, remote)
	if merged.TraceID != rtr.ID() {
		t.Errorf("merged ID = %q", merged.TraceID)
	}
	if len(merged.Spans) != 3 {
		t.Fatalf("merged %d spans, want 3", len(merged.Spans))
	}
	// The stitched tree must be single-rooted at the router's proxy span.
	tree := merged.Tree()
	lines := strings.Split(strings.TrimSpace(tree), "\n")
	if !strings.Contains(lines[1], "proxy") {
		t.Errorf("first span not proxy:\n%s", tree)
	}
	if !strings.Contains(tree, "    http.submit") {
		t.Errorf("backend span not nested under proxy:\n%s", tree)
	}
	if Merge(nil, nil).TraceID != "" {
		t.Error("merge of nils has an ID")
	}
}

func TestDebugHandlers(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	tr := rec.StartTrace("")
	sp := tr.StartSpan("work", nil)
	sp.End()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/traces", rec.ServeList)
	mux.HandleFunc("GET /debug/traces/{id}", rec.ServeDetail)

	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/traces", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("list status %d", rw.Code)
	}
	var list struct {
		Slowest []Summary `json:"slowest"`
		Recent  []Summary `json:"recent"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &list); err != nil {
		t.Fatalf("list decode: %v", err)
	}
	if len(list.Recent) != 1 || list.Recent[0].TraceID != tr.ID() {
		t.Errorf("recent = %+v", list.Recent)
	}

	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/traces/"+tr.ID(), nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("detail status %d", rw.Code)
	}
	var in Info
	if err := json.Unmarshal(rw.Body.Bytes(), &in); err != nil {
		t.Fatalf("detail decode: %v", err)
	}
	if len(in.Spans) != 1 || in.Spans[0].Name != "work" {
		t.Errorf("detail = %+v", in)
	}

	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/traces/nope", nil))
	if rw.Code != http.StatusNotFound {
		t.Errorf("missing trace status %d, want 404", rw.Code)
	}
}

// TestConcurrentRecording exercises span creation, attrs, End and
// snapshots racing across goroutines; run under -race in CI.
func TestConcurrentRecording(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Recent: 8, SpansPerTrace: 16, Slowest: 4})
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() { // concurrent scraper
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range rec.Recent(0) {
				rec.Snapshot(s.TraceID)
			}
			rec.Slowest(0)
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr := rec.StartTrace("")
				root := tr.StartSpan("root", nil)
				for j := 0; j < 5; j++ {
					sp := tr.StartSpan("child", root)
					sp.SetAttr("j", fmt.Sprint(j))
					sp.End()
				}
				root.End()
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-scraped
}
