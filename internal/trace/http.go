package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// ctxKey carries the active span through a context.
type ctxKey struct{}

// With returns ctx carrying s as the active span. A nil span returns
// ctx unchanged, so untraced paths never allocate.
func With(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFrom returns the active span in ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a child of ctx's active span and returns it plus a
// context carrying it. With no active span it returns (nil, ctx): the
// nil span's methods no-op, so callers need no branches.
func Start(ctx context.Context, name string) (*Span, context.Context) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return nil, ctx
	}
	sp := parent.tr.StartSpan(name, parent)
	return sp, With(ctx, sp)
}

// Inject stamps the propagation header from ctx's active span onto an
// outbound request. No-op without an active span.
func Inject(ctx context.Context, h http.Header) {
	s := SpanFrom(ctx)
	if s == nil {
		return
	}
	h.Set(Header, fmt.Sprintf("%s:%016x", s.tr.id, s.id))
}

// Extract parses the propagation header from an inbound request:
// trace ID plus the sender's span ID (0 when absent). ok is false when
// no usable header is present.
func Extract(h http.Header) (id string, parent uint64, ok bool) {
	v := h.Get(Header)
	if v == "" {
		return "", 0, false
	}
	if i := strings.IndexByte(v, ':'); i >= 0 {
		if p, err := strconv.ParseUint(v[i+1:], 16, 64); err == nil {
			parent = p
		}
		v = v[:i]
	}
	if !validID(v) {
		return "", 0, false
	}
	return v, parent, true
}

// ServeList handles GET /debug/traces: the slowest traces plus the most
// recent ones, as JSON. ?n= bounds both lists.
func (r *Recorder) ServeList(w http.ResponseWriter, req *http.Request) {
	n := 0
	if s := req.URL.Query().Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			n = v
		}
	}
	writeDebugJSON(w, http.StatusOK, map[string]any{
		"slowest": r.Slowest(n),
		"recent":  r.Recent(n),
	})
}

// ServeDetail handles GET /debug/traces/{id}: one trace's span tree.
func (r *Recorder) ServeDetail(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	in, ok := r.Snapshot(id)
	if !ok {
		writeDebugJSON(w, http.StatusNotFound, map[string]any{"error": "unknown or evicted trace " + strconv.Quote(id)})
		return
	}
	writeDebugJSON(w, http.StatusOK, in)
}

func writeDebugJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
