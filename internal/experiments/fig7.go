package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/imagegen"
	"repro/internal/psd2d"
	"repro/internal/stats"
	"repro/internal/wavelet"
)

// Fig7Options configures the 2-D error-spectrum experiment.
type Fig7Options struct {
	// Size is the square image side (paper: PSD method on 1024 samples,
	// i.e. a 32x32 grid; we default to 64).
	Size int
	// Images is the corpus size (paper: 196).
	Images int
	// Frac is the fractional width (paper: 12).
	Frac int
	// Levels is the decomposition depth (paper: 2).
	Levels int
	// Seed seeds the corpus.
	Seed int64
	// OutDir, when non-empty, receives fig7_sim.pgm and fig7_est.pgm.
	OutDir string
}

func (o Fig7Options) withDefaults() Fig7Options {
	if o.Size == 0 {
		o.Size = 64
	}
	if o.Images == 0 {
		o.Images = 196
	}
	if o.Frac == 0 {
		o.Frac = 12
	}
	if o.Levels == 0 {
		o.Levels = 2
	}
	return o
}

// Fig7Result reports the 2-D comparison.
type Fig7Result struct {
	// SimPower and EstPower are the measured and predicted per-pixel error
	// powers; Ed compares them (Eq. 15).
	SimPower float64
	EstPower float64
	Ed       float64
	// ShapeDistance is the relative L1 distance between the unit-
	// normalized 2-D spectra (0 = identical frequency repartition).
	ShapeDistance float64
	// SimPGM / EstPGM are the output paths when OutDir was set.
	SimPGM, EstPGM string
	// Sim and Est are the centered spectra for programmatic use.
	Sim, Est psd2d.Spectrum
}

// Fig7 reproduces the output-error frequency-repartition experiment: the
// fixed-point 2-level 9/7 codec is simulated on a synthetic 1/f corpus and
// the averaged 2-D error periodogram is compared against the analytical
// separable PSD propagation; both are rendered as log-normalized centered
// grayscale images like the paper's figure.
func Fig7(opt Fig7Options) (*Fig7Result, error) {
	opt = opt.withDefaults()
	bank := wavelet.CDF97()
	model := psd2d.DWTModel{
		Bank: bank, Levels: opt.Levels, Frac: opt.Frac, N: opt.Size, QuantizeInput: true,
	}
	est, err := model.ErrorSpectrum()
	if err != nil {
		return nil, err
	}
	imgs, err := imagegen.NoiseCorpus(opt.Images, opt.Size, opt.Size, opt.Seed)
	if err != nil {
		return nil, err
	}
	errImgs, err := psd2d.SimulateErrorImages(bank, imgs, opt.Levels, opt.Frac)
	if err != nil {
		return nil, err
	}
	sim, err := psd2d.AveragePeriodogram2D(errImgs)
	if err != nil {
		return nil, err
	}
	var simPower stats.Running
	for _, e := range errImgs {
		for _, row := range e {
			simPower.AddSlice(row)
		}
	}
	res := &Fig7Result{
		SimPower: simPower.MeanSquare(),
		EstPower: est.Total(),
		Sim:      sim.Centered(),
		Est:      est.Centered(),
	}
	res.Ed = stats.Ed(res.SimPower, res.EstPower)
	normSim := unit(sim)
	normEst := unit(est)
	d, err := normEst.Distance(normSim)
	if err != nil {
		return nil, err
	}
	res.ShapeDistance = d
	if opt.OutDir != "" {
		if err := os.MkdirAll(opt.OutDir, 0o755); err != nil {
			return nil, err
		}
		res.SimPGM = filepath.Join(opt.OutDir, "fig7_sim.pgm")
		res.EstPGM = filepath.Join(opt.OutDir, "fig7_est.pgm")
		if err := writeSpectrumPGM(res.SimPGM, res.Sim); err != nil {
			return nil, err
		}
		if err := writeSpectrumPGM(res.EstPGM, res.Est); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func unit(s psd2d.Spectrum) psd2d.Spectrum {
	n, m := s.Dims()
	out := psd2d.NewSpectrum(n, m)
	t := s.Total()
	if t == 0 {
		return out
	}
	for i := range s {
		for j := range s[i] {
			out[i][j] = s[i][j] / t
		}
	}
	return out
}

func writeSpectrumPGM(path string, s psd2d.Spectrum) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	img := s.RenderLog(50)
	if err := imagegen.WritePGM(f, img, 0, 1); err != nil {
		return err
	}
	return f.Close()
}

// Render writes the summary.
func (r *Fig7Result) Render(w io.Writer) {
	fmt.Fprintf(w, "FIG 7: output-error frequency repartition, 2-level DWT codec\n")
	fmt.Fprintf(w, "error power: simulation %.4g, PSD estimate %.4g (Ed %+.2f%%)\n",
		r.SimPower, r.EstPower, 100*r.Ed)
	fmt.Fprintf(w, "2-D spectrum shape distance (relative L1): %.3f\n", r.ShapeDistance)
	if r.SimPGM != "" {
		fmt.Fprintf(w, "wrote %s and %s\n", r.SimPGM, r.EstPGM)
	}
}
