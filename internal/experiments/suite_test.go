package experiments

import (
	"bytes"
	"testing"
)

// TestSuiteExperiment: the -exp suite mode sweeps the registry with every
// registered strategy at the experiment's NPSD and renders cleanly. The
// test shrinks NPSD; grid scale is covered by package suite's own tests.
func TestSuiteExperiment(t *testing.T) {
	rep, err := Suite(Options{NPSD: 64, Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NPSD != 64 {
		t.Fatalf("NPSD %d, want 64", rep.NPSD)
	}
	if len(rep.Systems) < 4 || len(rep.Strategies) < 4 {
		t.Fatalf("sweep too small: %d systems x %d strategies", len(rep.Systems), len(rep.Strategies))
	}
	if rep.Failures() != 0 {
		t.Fatalf("%d cells failed", rep.Failures())
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}
