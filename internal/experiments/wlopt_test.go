package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestWLOptExperiment(t *testing.T) {
	res, err := WLOpt(Options{Samples: 1 << 10, Seed: 1, NPSD: 128, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("expected both paper systems, got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Identical {
			t.Fatalf("%s: parallel refinement diverged from serial", row.System)
		}
		if row.Cost > row.UniformCost {
			t.Fatalf("%s: refined cost %g worse than uniform %g", row.System, row.Cost, row.UniformCost)
		}
		if row.Evaluations < 10 {
			t.Fatalf("%s: implausibly few oracle calls: %d", row.System, row.Evaluations)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "WLOPT") {
		t.Fatal("render missing header")
	}
}
