// Package experiments reproduces every table and figure of the paper's
// evaluation section (Section IV). Each experiment returns a typed result
// with a formatted rendering; cmd/experiments drives them from the command
// line and the repository-root benchmarks wrap them as testing.B targets.
//
// Sign convention: Ed = (E[err_sim^2] - E[err_est^2]) / E[err_sim^2]
// exactly as the paper's Eq. 15 — negative values are overestimates.
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/sfg"
	"repro/internal/stats"
	"repro/internal/systems"
)

// Options tunes the experiment scale. Zero values select paper-appropriate
// defaults; tests shrink Samples for speed.
type Options struct {
	// Samples is the Monte-Carlo stimulus length (paper: 1e6-1e7).
	Samples int
	// Seed makes all runs reproducible.
	Seed int64
	// NPSD is the default PSD grid (paper: 1024).
	NPSD int
	// Workers bounds parallel simulation fan-out (default: GOMAXPROCS).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Samples <= 0 {
		o.Samples = 1 << 20
	}
	if o.NPSD <= 0 {
		o.NPSD = 1024
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// FracDefault is the fractional width used where the paper does not sweep
// it (Table I).
const FracDefault = 12

// ---------------------------------------------------------------------------
// Table I — Ed statistics over the 147-filter FIR and IIR banks.

// Table1Row is one row group of Table I.
type Table1Row struct {
	Label   string
	N       int
	MinEd   float64
	MaxEd   float64
	MeanAbs float64
}

// Table1Result holds both filter families.
type Table1Result struct {
	FIR Table1Row
	IIR Table1Row
}

// Table1 runs the 147 FIR and 147 IIR single-filter experiments: each
// filter's output error power is measured by simulation and estimated by
// the proposed PSD method; Ed statistics are aggregated per family.
func Table1(opt Options) (*Table1Result, error) {
	opt = opt.withDefaults()
	firBank, err := filter.BuildFIRBank(filter.DefaultFIRBank())
	if err != nil {
		return nil, err
	}
	iirBank, err := filter.BuildIIRBank(filter.DefaultIIRBank())
	if err != nil {
		return nil, err
	}
	fir, err := bankEds(firBank, opt)
	if err != nil {
		return nil, err
	}
	iir, err := bankEds(iirBank, opt)
	if err != nil {
		return nil, err
	}
	fs := stats.Summarize(fir)
	is := stats.Summarize(iir)
	return &Table1Result{
		FIR: Table1Row{Label: "FIR filters", N: fs.N, MinEd: fs.Min, MaxEd: fs.Max, MeanAbs: fs.MeanAbs},
		IIR: Table1Row{Label: "IIR filters", N: is.N, MinEd: is.Min, MaxEd: is.Max, MeanAbs: is.MeanAbs},
	}, nil
}

// bankEds evaluates Ed for every filter of a bank in parallel.
func bankEds(bank []filter.Filter, opt Options) ([]float64, error) {
	eds := make([]float64, len(bank))
	errs := make([]error, len(bank))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Workers)
	for i := range bank {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sys := &systems.SingleFilter{Filt: bank[i]}
			g, err := sys.Graph(FracDefault)
			if err != nil {
				errs[i] = err
				return
			}
			est, err := core.NewPSDEvaluator(opt.NPSD).Evaluate(g)
			if err != nil {
				errs[i] = err
				return
			}
			sim, err := sys.Simulate(FracDefault, systems.SimConfig{
				Samples: opt.Samples, Seed: opt.Seed + int64(i),
			})
			if err != nil {
				errs[i] = err
				return
			}
			eds[i] = stats.Ed(sim.Power, est.Power)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return eds, nil
}

// Render writes the paper-style table.
func (r *Table1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "TABLE I: relative error power estimation statistics Ed\n")
	fmt.Fprintf(w, "%-12s %12s %12s %12s\n", "", "FIR filters", "IIR filters", "")
	fmt.Fprintf(w, "%-12s %11.2f%% %11.2f%%\n", "min(Ed)", 100*r.FIR.MinEd, 100*r.IIR.MinEd)
	fmt.Fprintf(w, "%-12s %11.2f%% %11.2f%%\n", "max(Ed)", 100*r.FIR.MaxEd, 100*r.IIR.MaxEd)
	fmt.Fprintf(w, "%-12s %11.2f%% %11.2f%%\n", "mean(|Ed|)", 100*r.FIR.MeanAbs, 100*r.IIR.MeanAbs)
	fmt.Fprintf(w, "(n = %d FIR, %d IIR; d = %d frac bits, N_PSD = paper default)\n",
		r.FIR.N, r.IIR.N, FracDefault)
}

// ---------------------------------------------------------------------------
// Fig. 4 — Ed versus fractional bit-width d for the two systems.

// Fig4Point is one sweep point.
type Fig4Point struct {
	D     int
	EdFF  float64
	EdDWT float64
}

// Fig4Result is the full sweep.
type Fig4Result struct {
	Points []Fig4Point
	NPSD   int
}

// Fig4 sweeps d in {8, 12, ..., 32} for the frequency-filtering and DWT
// systems, comparing PSD estimates (N_PSD per Options) with simulation.
func Fig4(opt Options) (*Fig4Result, error) {
	opt = opt.withDefaults()
	ff, err := systems.NewFreqFilter()
	if err != nil {
		return nil, err
	}
	dwt := systems.NewDWT()
	res := &Fig4Result{NPSD: opt.NPSD}
	for d := 8; d <= 32; d += 4 {
		edFF, err := systemEd(ff, d, opt.NPSD, opt)
		if err != nil {
			return nil, fmt.Errorf("fig4 d=%d freq-filter: %w", d, err)
		}
		edDWT, err := systemEd(dwt, d, opt.NPSD, opt)
		if err != nil {
			return nil, fmt.Errorf("fig4 d=%d dwt: %w", d, err)
		}
		res.Points = append(res.Points, Fig4Point{D: d, EdFF: edFF, EdDWT: edDWT})
	}
	return res, nil
}

// systemEd computes Ed for one system at one (d, NPSD).
func systemEd(sys systems.System, d, npsd int, opt Options) (float64, error) {
	g, err := sys.Graph(d)
	if err != nil {
		return 0, err
	}
	est, err := core.NewPSDEvaluator(npsd).Evaluate(g)
	if err != nil {
		return 0, err
	}
	sim, err := sys.Simulate(d, systems.SimConfig{Samples: opt.Samples, Seed: opt.Seed})
	if err != nil {
		return 0, err
	}
	return stats.Ed(sim.Power, est.Power), nil
}

// Render writes the series.
func (r *Fig4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "FIG 4: Ed versus fractional bit-width d (N_PSD = %d)\n", r.NPSD)
	fmt.Fprintf(w, "%6s %14s %14s\n", "d", "Freq.Filt.", "DWT 9/7")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%6d %13.2f%% %13.2f%%\n", p.D, 100*p.EdFF, 100*p.EdDWT)
	}
}

// ---------------------------------------------------------------------------
// Fig. 5 — Ed versus the number of PSD samples N_PSD at d = 32.

// Fig5Point is one grid size.
type Fig5Point struct {
	NPSD  int
	EdFF  float64
	EdDWT float64
}

// Fig5Result is the sweep.
type Fig5Result struct {
	Points []Fig5Point
	D      int
}

// Fig5 sweeps N_PSD in powers of two from 16 to 1024 with d = 32 (the
// paper's setting); the simulation is run once per system and reused.
func Fig5(opt Options) (*Fig5Result, error) {
	opt = opt.withDefaults()
	const d = 32
	ff, err := systems.NewFreqFilter()
	if err != nil {
		return nil, err
	}
	dwt := systems.NewDWT()
	simFF, err := ff.Simulate(d, systems.SimConfig{Samples: opt.Samples, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	simDWT, err := dwt.Simulate(d, systems.SimConfig{Samples: opt.Samples, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	gFF, err := ff.Graph(d)
	if err != nil {
		return nil, err
	}
	gDWT, err := dwt.Graph(d)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{D: d}
	for n := 16; n <= 1024; n *= 2 {
		estFF, err := core.NewPSDEvaluator(n).Evaluate(gFF)
		if err != nil {
			return nil, err
		}
		estDWT, err := core.NewPSDEvaluator(n).Evaluate(gDWT)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig5Point{
			NPSD:  n,
			EdFF:  stats.Ed(simFF.Power, estFF.Power),
			EdDWT: stats.Ed(simDWT.Power, estDWT.Power),
		})
	}
	return res, nil
}

// Render writes the series.
func (r *Fig5Result) Render(w io.Writer) {
	fmt.Fprintf(w, "FIG 5: Ed versus number of PSD samples N_PSD (d = %d)\n", r.D)
	fmt.Fprintf(w, "%8s %14s %14s\n", "N_PSD", "Freq.Filt.", "DWT 9/7")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8d %13.2f%% %13.2f%%\n", p.NPSD, 100*p.EdFF, 100*p.EdDWT)
	}
}

// ---------------------------------------------------------------------------
// Table II — proposed method (max/min accuracy over the N_PSD sweep) versus
// the PSD-agnostic method.

// Table2Row is one system's comparison.
type Table2Row struct {
	System     string
	ProposedAt struct {
		MaxAccuracy float64 // Ed at the best N_PSD (1024)
		MinAccuracy float64 // Ed at the worst N_PSD (16)
	}
	Agnostic float64
}

// Table2Result holds both systems.
type Table2Result struct {
	Rows []Table2Row
	D    int
}

// Table2 compares the proposed evaluator at N_PSD = 1024 (max accuracy) and
// N_PSD = 16 (min accuracy) against the PSD-agnostic hierarchical baseline.
func Table2(opt Options) (*Table2Result, error) {
	opt = opt.withDefaults()
	const d = 12
	ff, err := systems.NewFreqFilter()
	if err != nil {
		return nil, err
	}
	res := &Table2Result{D: d}
	for _, sys := range []systems.System{ff, systems.NewDWT()} {
		g, err := sys.Graph(d)
		if err != nil {
			return nil, err
		}
		sim, err := sys.Simulate(d, systems.SimConfig{Samples: opt.Samples, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		best, err := core.NewPSDEvaluator(1024).Evaluate(g)
		if err != nil {
			return nil, err
		}
		worst, err := core.NewPSDEvaluator(16).Evaluate(g)
		if err != nil {
			return nil, err
		}
		agn, err := core.NewAgnosticEvaluator(1024).Evaluate(g)
		if err != nil {
			return nil, err
		}
		row := Table2Row{System: sys.Name(), Agnostic: stats.Ed(sim.Power, agn.Power)}
		row.ProposedAt.MaxAccuracy = stats.Ed(sim.Power, best.Power)
		row.ProposedAt.MinAccuracy = stats.Ed(sim.Power, worst.Power)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the paper-style comparison.
func (r *Table2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "TABLE II: Ed, PSD-agnostic versus proposed PSD method (d = %d)\n", r.D)
	fmt.Fprintf(w, "%-18s %16s %16s %16s\n", "", "proposed (max)", "proposed (min)", "PSD agnostic")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-18s %15.2f%% %15.2f%% %15.2f%%\n",
			row.System, 100*row.ProposedAt.MaxAccuracy, 100*row.ProposedAt.MinAccuracy, 100*row.Agnostic)
	}
	for _, row := range r.Rows {
		worse := math.Abs(row.Agnostic) / math.Max(1e-12, math.Abs(row.ProposedAt.MaxAccuracy))
		fmt.Fprintf(w, "  %s: agnostic estimate is %.0fx worse than proposed (max accuracy)\n", row.System, worse)
	}
}

// ---------------------------------------------------------------------------
// Fig. 6 — estimation and simulation time versus N_PSD, with speedup.

// Fig6Point is one grid size.
type Fig6Point struct {
	NPSD       int
	EstFF      time.Duration
	EstDWT     time.Duration
	SpeedupFF  float64
	SpeedupDWT float64
}

// Fig6Result holds the timing sweep.
type Fig6Result struct {
	Points  []Fig6Point
	SimFF   time.Duration
	SimDWT  time.Duration
	Samples int
}

// Fig6 times the proposed evaluator for N_PSD = 16..4096 on both systems
// and one Monte-Carlo simulation each, reporting the speedup factor.
func Fig6(opt Options) (*Fig6Result, error) {
	opt = opt.withDefaults()
	const d = 16
	ff, err := systems.NewFreqFilter()
	if err != nil {
		return nil, err
	}
	dwt := systems.NewDWT()
	gFF, err := ff.Graph(d)
	if err != nil {
		return nil, err
	}
	gDWT, err := dwt.Graph(d)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Samples: opt.Samples}
	start := time.Now()
	if _, err := ff.Simulate(d, systems.SimConfig{Samples: opt.Samples, Seed: opt.Seed}); err != nil {
		return nil, err
	}
	res.SimFF = time.Since(start)
	start = time.Now()
	if _, err := dwt.Simulate(d, systems.SimConfig{Samples: opt.Samples, Seed: opt.Seed}); err != nil {
		return nil, err
	}
	res.SimDWT = time.Since(start)
	for n := 16; n <= 4096; n *= 2 {
		tFF, err := timeEvaluate(gFF, n)
		if err != nil {
			return nil, err
		}
		tDWT, err := timeEvaluate(gDWT, n)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig6Point{
			NPSD:       n,
			EstFF:      tFF,
			EstDWT:     tDWT,
			SpeedupFF:  float64(res.SimFF) / float64(tFF),
			SpeedupDWT: float64(res.SimDWT) / float64(tDWT),
		})
	}
	return res, nil
}

// timeEvaluate runs the evaluator enough times to get a stable wall-clock
// figure and returns the per-evaluation duration.
func timeEvaluate(g *sfg.Graph, n int) (time.Duration, error) {
	ev := core.NewPSDEvaluator(n)
	// Warm-up.
	if _, err := ev.Evaluate(g); err != nil {
		return 0, err
	}
	const reps = 5
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := ev.Evaluate(g); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / reps, nil
}

// Render writes the timing table (log10 seconds, like the paper's axes).
func (r *Fig6Result) Render(w io.Writer) {
	fmt.Fprintf(w, "FIG 6: execution time and speedup versus N_PSD (simulation: %d samples)\n", r.Samples)
	fmt.Fprintf(w, "simulation time: freq-filter %v, dwt %v\n", r.SimFF, r.SimDWT)
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s\n", "N_PSD", "est FF", "est DWT", "speedup FF", "speedup DWT")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8d %12v %12v %11.0fx %11.0fx\n",
			p.NPSD, p.EstFF, p.EstDWT, p.SpeedupFF, p.SpeedupDWT)
	}
}
