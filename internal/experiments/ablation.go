package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/qnoise"
	"repro/internal/sfg"
	"repro/internal/stats"
	"repro/internal/systems"
)

// AblationResult collects the two design-choice studies DESIGN.md calls
// out: the linear-complexity claim for tau_eval and the value of coherent
// (complex path response) recombination over power-domain propagation.
type AblationResult struct {
	// Scaling holds per-N_PSD evaluation times on the DWT graph.
	Scaling []struct {
		NPSD int
		Time time.Duration
	}
	// Recombination compares the proposed and agnostic methods on a
	// cancelling-paths graph where the exact answer is zero.
	Recombination struct {
		ProposedPower float64
		AgnosticPower float64
		ExactPower    float64
	}
	// EvaluatorVsEvaluator compares proposed vs flat on an LTI chain where
	// both are exact under PQN (they must agree to near machine
	// precision).
	FlatAgreement float64 // |psd - flat| / flat
}

// Ablation runs both studies at the given scale.
func Ablation(opt Options) (*AblationResult, error) {
	opt = opt.withDefaults()
	res := &AblationResult{}

	// 1. tau_eval scaling on the Fig. 3 graph.
	g, err := systems.NewDWT().Graph(16)
	if err != nil {
		return nil, err
	}
	for n := 64; n <= 4096; n *= 2 {
		t, err := timeEvaluate(g, n)
		if err != nil {
			return nil, err
		}
		res.Scaling = append(res.Scaling, struct {
			NPSD int
			Time time.Duration
		}{NPSD: n, Time: t})
	}

	// 2. Coherent recombination: +1/-1 parallel paths cancel exactly.
	cg := cancellingGraph()
	prop, err := core.NewPSDEvaluator(256).Evaluate(cg)
	if err != nil {
		return nil, err
	}
	agn, err := core.NewAgnosticEvaluator(256).Evaluate(cg)
	if err != nil {
		return nil, err
	}
	res.Recombination.ProposedPower = prop.Power
	res.Recombination.AgnosticPower = agn.Power
	res.Recombination.ExactPower = 0

	// 3. Flat agreement on a single LTI block.
	sf := &systems.SingleFilter{Filt: mustBankFilter()}
	lg, err := sf.Graph(FracDefault)
	if err != nil {
		return nil, err
	}
	p, err := core.NewPSDEvaluator(1024).Evaluate(lg)
	if err != nil {
		return nil, err
	}
	f, err := core.NewFlatEvaluator().Evaluate(lg)
	if err != nil {
		return nil, err
	}
	res.FlatAgreement = stats.Ed(f.Power, p.Power)
	return res, nil
}

// Render writes the ablation report.
func (r *AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "ABLATIONS\n")
	fmt.Fprintf(w, "A1: tau_eval versus N_PSD on the DWT graph (linear-complexity claim)\n")
	var prev time.Duration
	for _, p := range r.Scaling {
		ratio := ""
		if prev > 0 {
			ratio = fmt.Sprintf("  (x%.2f)", float64(p.Time)/float64(prev))
		}
		fmt.Fprintf(w, "  N_PSD %5d: %12v%s\n", p.NPSD, p.Time, ratio)
		prev = p.Time
	}
	fmt.Fprintf(w, "A2: cancelling reconvergent paths (exact output power = 0)\n")
	fmt.Fprintf(w, "  proposed (coherent): %.3g\n", r.Recombination.ProposedPower)
	fmt.Fprintf(w, "  agnostic (power-domain): %.3g  <- cannot see the cancellation\n",
		r.Recombination.AgnosticPower)
	fmt.Fprintf(w, "A3: proposed vs flat on a single LTI block: relative deviation %.2e (paper: strictly equivalent)\n",
		r.FlatAgreement)
}

func cancellingGraph() *coreGraph {
	g := newCoreGraph()
	in := g.Input("in")
	gp := g.Gain("pos", 1)
	gm := g.Gain("neg", -1)
	a := g.Adder("sum")
	out := g.Output("out")
	g.Connect(in, gp)
	g.Connect(in, gm)
	g.Connect(gp, a)
	g.Connect(gm, a)
	g.Connect(a, out)
	g.SetNoise(in, noiseSource("in.q"))
	return g
}

// coreGraph aliases sfg.Graph for local readability.
type coreGraph = sfg.Graph

func newCoreGraph() *coreGraph { return sfg.New() }

func noiseSource(name string) qnoise.Source {
	return qnoise.Source{Name: name, Mode: systems.Mode, Frac: FracDefault}
}

// mustBankFilter returns one representative Table-I bank member.
func mustBankFilter() filter.Filter {
	bank, err := filter.BuildFIRBank(filter.DefaultFIRBank())
	if err != nil {
		panic(err)
	}
	return bank[0]
}
