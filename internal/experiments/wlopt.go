package experiments

import (
	"fmt"
	"io"
	"reflect"
	"time"

	"repro/internal/core"
	"repro/internal/sfg"
	"repro/internal/systems"
	"repro/internal/wlopt"
)

// WLOptRow is one system's word-length refinement outcome, timed with a
// serial and a parallel oracle.
type WLOptRow struct {
	System      string
	Sources     int
	Budget      float64
	Cost        float64
	UniformCost float64
	Evaluations int
	Serial      time.Duration
	Parallel    time.Duration
	Workers     int
	Identical   bool // parallel run returned the serial assignment
}

// WLOptResult aggregates the refinement experiment.
type WLOptResult struct {
	NPSD int
	Rows []WLOptRow
}

// wlOptBounds are the width bounds the refinement experiment sweeps.
const (
	wlOptMinFrac = 4
	wlOptMaxFrac = 20
)

// WLOpt runs the motivating application end-to-end on both paper systems:
// greedy word-length refinement with the plan-cached PSD engine as the
// accuracy oracle, once with a single worker and once with Options.Workers,
// verifying that parallelism changes the wall-clock but not the answer.
func WLOpt(opt Options) (*WLOptResult, error) {
	opt = opt.withDefaults()
	res := &WLOptResult{NPSD: opt.NPSD}
	ff, err := systems.NewFreqFilter()
	if err != nil {
		return nil, err
	}
	for _, sys := range []systems.System{ff, systems.NewDWT()} {
		row, err := wlOptRow(sys, opt)
		if err != nil {
			return nil, fmt.Errorf("wlopt %s: %w", sys.Name(), err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func wlOptRow(sys systems.System, opt Options) (*WLOptRow, error) {
	build := func() (*sfg.Graph, error) { return sys.Graph(wlOptMaxFrac) }
	g, err := build()
	if err != nil {
		return nil, err
	}
	// Pick a nontrivial budget the optimizer has to work for: the power of
	// the uniform mid-range width.
	eng := core.NewEngine(opt.NPSD, opt.Workers)
	mid := (wlOptMinFrac + wlOptMaxFrac) / 2
	probe, err := eng.EvaluateAssignment(g, core.UniformAssignment(g.NoiseSources(), mid))
	if err != nil {
		return nil, err
	}
	budget := probe.Power
	wopt := wlopt.Options{
		Budget:  budget,
		MinFrac: wlOptMinFrac, MaxFrac: wlOptMaxFrac,
		Workers: 1,
	}
	start := time.Now()
	serial, err := wlopt.Optimize(g, wopt)
	if err != nil {
		return nil, err
	}
	serialTime := time.Since(start)

	g2, err := build()
	if err != nil {
		return nil, err
	}
	wopt.Workers = opt.Workers
	start = time.Now()
	parallel, err := wlopt.Optimize(g2, wopt)
	if err != nil {
		return nil, err
	}
	parallelTime := time.Since(start)

	return &WLOptRow{
		System:      sys.Name(),
		Sources:     len(serial.Fracs),
		Budget:      budget,
		Cost:        parallel.Cost,
		UniformCost: parallel.UniformCost,
		Evaluations: parallel.Evaluations,
		Serial:      serialTime,
		Parallel:    parallelTime,
		Workers:     opt.Workers,
		Identical:   reflect.DeepEqual(serial.Fracs, parallel.Fracs) && serial.Power == parallel.Power,
	}, nil
}

// Render writes the refinement table.
func (r *WLOptResult) Render(w io.Writer) {
	fmt.Fprintf(w, "WLOPT: greedy word-length refinement, PSD engine oracle (N_PSD=%d)\n", r.NPSD)
	fmt.Fprintf(w, "%-12s %8s %12s %10s %10s %7s %12s %12s %8s %9s\n",
		"system", "sources", "budget", "cost", "uniform", "evals", "serial", "parallel", "speedup", "identical")
	for _, row := range r.Rows {
		speedup := float64(row.Serial) / float64(row.Parallel)
		fmt.Fprintf(w, "%-12s %8d %12.3g %10.0f %10.0f %7d %12v %12v %7.2fx %9v\n",
			row.System, row.Sources, row.Budget, row.Cost, row.UniformCost,
			row.Evaluations, row.Serial.Round(time.Microsecond), row.Parallel.Round(time.Microsecond),
			speedup, row.Identical)
	}
}
