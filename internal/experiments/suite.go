package experiments

import "repro/internal/suite"

// Suite runs the full-registry scenario sweep (every system x every
// registered word-length strategy x the default budget grid) as an
// experiment mode: the same harness cmd/suite exposes, scaled by the
// experiment options. NPSD and Workers map onto the engine bin count and
// the cell pool; Samples is ignored (the sweep is purely analytical — that
// is the paper's point).
func Suite(opt Options) (*suite.Report, error) {
	opt = opt.withDefaults()
	return suite.Run(suite.Config{
		NPSD:    opt.NPSD,
		Workers: opt.Workers,
		Seed:    opt.Seed,
	})
}
