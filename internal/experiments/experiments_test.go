package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

// Small-scale options keep CI fast; the cmd binary runs paper scale.
func fastOpts() Options {
	return Options{Samples: 1 << 15, Seed: 1, NPSD: 256, Workers: 8}
}

func TestTable1SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 is heavy")
	}
	res, err := Table1(Options{Samples: 1 << 16, Seed: 1, NPSD: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.FIR.N != 147 || res.IIR.N != 147 {
		t.Fatalf("bank sizes %d/%d, want 147/147", res.FIR.N, res.IIR.N)
	}
	// FIR estimates must be tight even at small sample counts; IIR wider.
	if res.FIR.MeanAbs > 0.10 {
		t.Fatalf("FIR mean|Ed| %.2f%% too large", 100*res.FIR.MeanAbs)
	}
	if res.IIR.MeanAbs > 0.50 {
		t.Fatalf("IIR mean|Ed| %.2f%% too large", 100*res.IIR.MeanAbs)
	}
	// Every value is within the sub-one-bit band.
	for _, v := range []float64{res.FIR.MinEd, res.FIR.MaxEd, res.IIR.MinEd, res.IIR.MaxEd} {
		if !stats.SubOneBit(v) {
			t.Fatalf("Ed %.2f%% outside sub-one-bit band", 100*v)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "TABLE I") {
		t.Fatal("render missing header")
	}
}

func TestFig4SmallScale(t *testing.T) {
	res, err := Fig4(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 7 {
		t.Fatalf("points %d, want 7 (d = 8..32 step 4)", len(res.Points))
	}
	// The paper: maximum deviation about 10%. Allow slack for the small
	// Monte-Carlo runs.
	for _, p := range res.Points {
		if math.Abs(p.EdFF) > 0.25 || math.Abs(p.EdDWT) > 0.25 {
			t.Fatalf("d=%d: Ed FF %.1f%% / DWT %.1f%% too large",
				p.D, 100*p.EdFF, 100*p.EdDWT)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "FIG 4") {
		t.Fatal("render missing header")
	}
}

func TestFig5SmallScale(t *testing.T) {
	res, err := Fig5(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 7 {
		t.Fatalf("points %d, want 7 (16..1024)", len(res.Points))
	}
	if res.Points[0].NPSD != 16 || res.Points[6].NPSD != 1024 {
		t.Fatal("N_PSD sweep bounds wrong")
	}
	// At the largest grid both systems should be in a tight band.
	last := res.Points[6]
	if math.Abs(last.EdFF) > 0.20 || math.Abs(last.EdDWT) > 0.20 {
		t.Fatalf("N=1024: Ed FF %.1f%% / DWT %.1f%%", 100*last.EdFF, 100*last.EdDWT)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "FIG 5") {
		t.Fatal("render missing header")
	}
}

func TestTable2SmallScale(t *testing.T) {
	res, err := Table2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if math.Abs(row.ProposedAt.MaxAccuracy) > 0.2 {
			t.Fatalf("%s: proposed Ed %.1f%% too large", row.System, 100*row.ProposedAt.MaxAccuracy)
		}
	}
	// The DWT row must show the agnostic method failing by a large factor
	// (paper: 610% vs ~1%).
	dwtRow := res.Rows[1]
	if math.Abs(dwtRow.Agnostic) < 5*math.Abs(dwtRow.ProposedAt.MaxAccuracy) {
		t.Fatalf("DWT agnostic %.1f%% should dwarf proposed %.1f%%",
			100*dwtRow.Agnostic, 100*dwtRow.ProposedAt.MaxAccuracy)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "TABLE II") {
		t.Fatal("render missing header")
	}
}

func TestFig6Timing(t *testing.T) {
	res, err := Fig6(Options{Samples: 1 << 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 9 {
		t.Fatalf("points %d, want 9 (16..4096)", len(res.Points))
	}
	// Estimation must beat simulation for every grid size at this scale.
	for _, p := range res.Points {
		if p.SpeedupFF < 1 || p.SpeedupDWT < 1 {
			t.Fatalf("N=%d: speedups %.1f/%.1f < 1", p.NPSD, p.SpeedupFF, p.SpeedupDWT)
		}
	}
	// Estimation time grows with N (allow noise: compare extremes).
	if res.Points[8].EstDWT < res.Points[0].EstDWT {
		t.Log("warning: timing noise — largest grid faster than smallest")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "FIG 6") {
		t.Fatal("render missing header")
	}
}

func TestFig7SmallScale(t *testing.T) {
	res, err := Fig7(Fig7Options{Size: 32, Images: 16, Frac: 12, Levels: 2, Seed: 3, OutDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Ed) > 0.3 {
		t.Fatalf("Fig7 Ed %.1f%% too large", 100*res.Ed)
	}
	if res.ShapeDistance > 0.35 {
		t.Fatalf("shape distance %.3f too large", res.ShapeDistance)
	}
	if res.SimPGM == "" || res.EstPGM == "" {
		t.Fatal("PGM outputs missing")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "FIG 7") {
		t.Fatal("render missing header")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Samples <= 0 || o.NPSD <= 0 || o.Workers <= 0 {
		t.Fatal("defaults not applied")
	}
	f := Fig7Options{}.withDefaults()
	if f.Size != 64 || f.Images != 196 || f.Frac != 12 || f.Levels != 2 {
		t.Fatalf("fig7 defaults %+v", f)
	}
}

func TestAblation(t *testing.T) {
	res, err := Ablation(Options{Samples: 1 << 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaling) != 7 {
		t.Fatalf("scaling points %d", len(res.Scaling))
	}
	if res.Recombination.ProposedPower > 1e-20 {
		t.Fatalf("proposed should see the exact cancellation, got %g", res.Recombination.ProposedPower)
	}
	if res.Recombination.AgnosticPower < 1e-12 {
		t.Fatal("agnostic should miss the cancellation")
	}
	if math.Abs(res.FlatAgreement) > 1e-9 {
		t.Fatalf("flat and proposed should agree on LTI blocks: %g", res.FlatAgreement)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "ABLATIONS") {
		t.Fatal("render missing header")
	}
}
