// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation section as testing.B targets, plus ablation benches
// for the design choices called out in DESIGN.md. Run:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableX/BenchmarkFigX wraps the corresponding experiment at
// a benchmark-friendly scale; cmd/experiments runs them at paper scale and
// prints the paper-style rows.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/filter"
	"repro/internal/qnoise"
	"repro/internal/sfg"
	"repro/internal/systems"
)

// benchOpts shrinks Monte-Carlo sizes so a full -bench=. pass stays
// tractable while preserving every comparison's shape.
func benchOpts() experiments.Options {
	return experiments.Options{Samples: 1 << 15, Seed: 1, NPSD: 256}
}

// BenchmarkTable1_FIR regenerates the FIR half of Table I (147 filters,
// simulation + PSD estimation + Ed statistics).
func BenchmarkTable1_FIR(b *testing.B) {
	bank, err := filter.BuildFIRBank(filter.DefaultFIRBank())
	if err != nil {
		b.Fatal(err)
	}
	benchBank(b, bank)
}

// BenchmarkTable1_IIR regenerates the IIR half of Table I.
func BenchmarkTable1_IIR(b *testing.B) {
	bank, err := filter.BuildIIRBank(filter.DefaultIIRBank())
	if err != nil {
		b.Fatal(err)
	}
	benchBank(b, bank)
}

func benchBank(b *testing.B, bank []filter.Filter) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j, f := range bank {
			sys := &systems.SingleFilter{Filt: f}
			g, err := sys.Graph(experiments.FracDefault)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.NewPSDEvaluator(256).Evaluate(g); err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Simulate(experiments.FracDefault, systems.SimConfig{
				Samples: 4096, Seed: int64(j),
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig4 regenerates the Ed-versus-d sweep for both systems.
func BenchmarkFig4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the Ed-versus-N_PSD sweep.
func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the proposed-versus-agnostic comparison.
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_Estimation times the proposed evaluator alone on both
// systems at the paper's default N_PSD = 1024 — the numerator of Fig. 6's
// speedup.
func BenchmarkFig6_Estimation(b *testing.B) {
	ff, err := systems.NewFreqFilter()
	if err != nil {
		b.Fatal(err)
	}
	for _, sys := range []systems.System{ff, systems.NewDWT()} {
		g, err := sys.Graph(16)
		if err != nil {
			b.Fatal(err)
		}
		ev := core.NewPSDEvaluator(1024)
		b.Run(sys.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Evaluate(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6_Simulation times the Monte-Carlo side (per 2^15 samples) —
// the denominator of Fig. 6's speedup. The paper's 3-5 orders of magnitude
// appear when this is scaled to 1e6-1e7 samples.
func BenchmarkFig6_Simulation(b *testing.B) {
	ff, err := systems.NewFreqFilter()
	if err != nil {
		b.Fatal(err)
	}
	for _, sys := range []systems.System{ff, systems.NewDWT()} {
		b.Run(sys.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Simulate(16, systems.SimConfig{Samples: 1 << 15, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7 regenerates the 2-D error-spectrum experiment at reduced
// corpus size.
func BenchmarkFig7(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(experiments.Fig7Options{
			Size: 32, Images: 8, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatorScaling is the ablation for the linear-complexity claim
// (Section III-B): evaluation time versus N_PSD on the DWT graph should
// grow linearly once preprocessing is amortized.
func BenchmarkEvaluatorScaling(b *testing.B) {
	g, err := systems.NewDWT().Graph(16)
	if err != nil {
		b.Fatal(err)
	}
	for n := 64; n <= 4096; n *= 4 {
		ev := core.NewPSDEvaluator(n)
		b.Run(fmt.Sprintf("npsd=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Evaluate(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecombination is the ablation for coherent-versus-power-domain
// recombination of reconvergent paths: the comb graph (direct + delayed
// path) evaluated by the proposed method (coherent, exact) and the
// agnostic baseline (power domain).
func BenchmarkRecombination(b *testing.B) {
	g := combGraph()
	for _, ev := range []core.Evaluator{core.NewPSDEvaluator(1024), core.NewAgnosticEvaluator(1024)} {
		b.Run(ev.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Evaluate(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func combGraph() *sfg.Graph {
	g := sfg.New()
	in := g.Input("in")
	gp := g.Gain("direct", 1)
	dl := g.Delay("z1", 1)
	a := g.Adder("sum")
	out := g.Output("out")
	g.Connect(in, gp)
	g.Connect(in, dl)
	g.Connect(gp, a)
	g.Connect(dl, a)
	g.Connect(a, out)
	g.SetNoise(in, qnoise.Source{Mode: systems.Mode, Frac: 12})
	return g
}

// BenchmarkSimulationThroughput measures raw fxsim sample throughput on a
// mid-size FIR graph — the baseline cost every experiment's Monte-Carlo
// column pays.
func BenchmarkSimulationThroughput(b *testing.B) {
	f, err := filter.DesignFIR(filter.FIRSpec{Band: filter.Lowpass, Taps: 64, F1: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	sys := &systems.SingleFilter{Filt: f}
	b.ReportAllocs()
	b.SetBytes(1 << 16 * 8)
	for i := 0; i < b.N; i++ {
		if _, err := sys.Simulate(12, systems.SimConfig{Samples: 1 << 16, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
