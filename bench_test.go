// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation section as testing.B targets, plus ablation benches
// for the design choices called out in DESIGN.md and the word-length
// optimizer's parallel-oracle scaling bench. Run:
//
//	go test -bench=. -benchmem
//
// Passing -short shrinks every Monte-Carlo and corpus size further — the
// mode cmd/benchreg uses to collect regression records quickly.
//
// Each BenchmarkTableX/BenchmarkFigX wraps the corresponding experiment at
// a benchmark-friendly scale; cmd/experiments runs them at paper scale and
// prints the paper-style rows.
package repro

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/filter"
	"repro/internal/qnoise"
	"repro/internal/service"
	"repro/internal/sfg"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/systems"
	"repro/internal/wlopt"
)

// benchOpts shrinks Monte-Carlo sizes so a full -bench=. pass stays
// tractable while preserving every comparison's shape; -short shrinks them
// again for the regression harness.
func benchOpts() experiments.Options {
	samples := 1 << 15
	if testing.Short() {
		samples = 1 << 11
	}
	return experiments.Options{Samples: samples, Seed: 1, NPSD: 256}
}

// benchSimSamples is the per-run stimulus length of the simulation-side
// benches, shortened under -short.
func benchSimSamples() int {
	if testing.Short() {
		return 1 << 12
	}
	return 1 << 15
}

// BenchmarkTable1_FIR regenerates the FIR half of Table I (147 filters,
// simulation + PSD estimation + Ed statistics).
func BenchmarkTable1_FIR(b *testing.B) {
	bank, err := filter.BuildFIRBank(filter.DefaultFIRBank())
	if err != nil {
		b.Fatal(err)
	}
	benchBank(b, bank)
}

// BenchmarkTable1_IIR regenerates the IIR half of Table I.
func BenchmarkTable1_IIR(b *testing.B) {
	bank, err := filter.BuildIIRBank(filter.DefaultIIRBank())
	if err != nil {
		b.Fatal(err)
	}
	benchBank(b, bank)
}

func benchBank(b *testing.B, bank []filter.Filter) {
	if testing.Short() && len(bank) > 24 {
		bank = bank[:24]
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j, f := range bank {
			sys := &systems.SingleFilter{Filt: f}
			g, err := sys.Graph(experiments.FracDefault)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.NewPSDEvaluator(256).Evaluate(g); err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Simulate(experiments.FracDefault, systems.SimConfig{
				Samples: 4096, Seed: int64(j),
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig4 regenerates the Ed-versus-d sweep for both systems.
func BenchmarkFig4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the Ed-versus-N_PSD sweep.
func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the proposed-versus-agnostic comparison.
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_Estimation times the proposed evaluator alone on both
// systems at the paper's default N_PSD = 1024 — the numerator of Fig. 6's
// speedup.
func BenchmarkFig6_Estimation(b *testing.B) {
	ff, err := systems.NewFreqFilter()
	if err != nil {
		b.Fatal(err)
	}
	for _, sys := range []systems.System{ff, systems.NewDWT()} {
		g, err := sys.Graph(16)
		if err != nil {
			b.Fatal(err)
		}
		ev := core.NewPSDEvaluator(1024)
		b.Run(sys.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Evaluate(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6_Simulation times the Monte-Carlo side (per 2^15 samples) —
// the denominator of Fig. 6's speedup. The paper's 3-5 orders of magnitude
// appear when this is scaled to 1e6-1e7 samples.
func BenchmarkFig6_Simulation(b *testing.B) {
	ff, err := systems.NewFreqFilter()
	if err != nil {
		b.Fatal(err)
	}
	for _, sys := range []systems.System{ff, systems.NewDWT()} {
		b.Run(sys.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Simulate(16, systems.SimConfig{Samples: benchSimSamples(), Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7 regenerates the 2-D error-spectrum experiment at reduced
// corpus size.
func BenchmarkFig7(b *testing.B) {
	size, images := 32, 8
	if testing.Short() {
		size, images = 16, 2
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(experiments.Fig7Options{
			Size: size, Images: images, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatorScaling is the ablation for the linear-complexity claim
// (Section III-B): evaluation time versus N_PSD on the DWT graph should
// grow linearly once preprocessing is amortized.
func BenchmarkEvaluatorScaling(b *testing.B) {
	g, err := systems.NewDWT().Graph(16)
	if err != nil {
		b.Fatal(err)
	}
	for n := 64; n <= 4096; n *= 4 {
		ev := core.NewPSDEvaluator(n)
		b.Run(fmt.Sprintf("npsd=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Evaluate(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecombination is the ablation for coherent-versus-power-domain
// recombination of reconvergent paths: the comb graph (direct + delayed
// path) evaluated by the proposed method (coherent, exact) and the
// agnostic baseline (power domain).
func BenchmarkRecombination(b *testing.B) {
	g := combGraph()
	for _, ev := range []core.Evaluator{core.NewPSDEvaluator(1024), core.NewAgnosticEvaluator(1024)} {
		b.Run(ev.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Evaluate(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func combGraph() *sfg.Graph {
	g := sfg.New()
	in := g.Input("in")
	gp := g.Gain("direct", 1)
	dl := g.Delay("z1", 1)
	a := g.Adder("sum")
	out := g.Output("out")
	g.Connect(in, gp)
	g.Connect(in, dl)
	g.Connect(gp, a)
	g.Connect(dl, a)
	g.Connect(a, out)
	g.SetNoise(in, qnoise.Source{Mode: systems.Mode, Frac: 12})
	return g
}

// BenchmarkSimulationThroughput measures raw fxsim sample throughput on a
// mid-size FIR graph — the baseline cost every experiment's Monte-Carlo
// column pays.
func BenchmarkSimulationThroughput(b *testing.B) {
	f, err := filter.DesignFIR(filter.FIRSpec{Band: filter.Lowpass, Taps: 64, F1: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	samples := 1 << 16
	if testing.Short() {
		samples = 1 << 13
	}
	sys := &systems.SingleFilter{Filt: f}
	b.ReportAllocs()
	b.SetBytes(int64(samples) * 8)
	for i := 0; i < b.N; i++ {
		if _, err := sys.Simulate(12, systems.SimConfig{Samples: samples, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWLOpt times the full word-length refinement loop on the paper's
// DWT system with the plan-cached engine oracle, comparing a single-worker
// pool against one worker per CPU. The sub-benchmarks must report identical
// optimization results — only wall-clock may differ; the harness verifies
// that before timing. This is the headline number of the parallel
// evaluation engine: candidate moves of each greedy step fan out across
// the pool.
func BenchmarkWLOpt(b *testing.B) {
	maxFrac := 20
	if testing.Short() {
		maxFrac = 16
	}
	opts := func(workers int) wlopt.Options {
		return wlopt.Options{Budget: 1e-7, MinFrac: 4, MaxFrac: maxFrac, Workers: workers}
	}
	build := func(b *testing.B) *sfg.Graph {
		g, err := systems.NewDWT().Graph(maxFrac)
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	// Equivalence gate: parallel must return the serial assignment.
	serial, err := wlopt.Optimize(build(b), opts(1))
	if err != nil {
		b.Fatal(err)
	}
	parallel, err := wlopt.Optimize(build(b), opts(runtime.NumCPU()))
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Fracs, parallel.Fracs) || serial.Power != parallel.Power {
		b.Fatalf("parallel refinement diverged: %v vs %v", parallel.Fracs, serial.Fracs)
	}
	workersList := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workersList = append(workersList, n)
	}
	for _, workers := range workersList {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := build(b)
				b.StartTimer()
				if _, err := wlopt.Optimize(g, opts(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluateMoves measures the move-scoring tiers: one greedy
// step's worth of single-width candidate moves through the scalar
// σ²-table path (powers only — what every strategy step consumes), the
// materializing delta path, and the same candidates as full assignments
// through EvaluateBatch.
func BenchmarkEvaluateMoves(b *testing.B) {
	g, err := systems.NewDWT().Graph(16)
	if err != nil {
		b.Fatal(err)
	}
	base := core.AssignmentOf(g)
	var moves []core.Move
	var batch []core.Assignment
	for _, id := range g.NoiseSources() {
		moves = append(moves, core.Move{Source: id, Frac: base[id] - 1})
		a := base.Clone()
		a[id]--
		batch = append(batch, a)
	}
	eng := core.NewEngine(1024, 1)
	want, err := eng.EvaluateBatch(g, batch)
	if err != nil {
		b.Fatal(err)
	}
	got, err := eng.EvaluateMoves(g, base, moves)
	if err != nil {
		b.Fatal(err)
	}
	powers, err := eng.PowerMoves(g, base, moves)
	if err != nil {
		b.Fatal(err)
	}
	for i := range got {
		if powers[i] != got[i].Power {
			b.Fatalf("move %d scalar score %g diverges from move power %g", i, powers[i], got[i].Power)
		}
		if rel := math.Abs(got[i].Power-want[i].Power) / math.Max(got[i].Power, want[i].Power); rel > 1e-12 {
			b.Fatalf("move %d power %g diverges from batch %g beyond 1e-12", i, got[i].Power, want[i].Power)
		}
	}
	b.Run("powers", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.PowerMoves(g, base, moves); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("moves", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.EvaluateMoves(g, base, moves); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.EvaluateBatch(g, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEnginePlanLookupParallel measures the engine's lock-free read
// path under contention: concurrent goroutines resolving a warm plan
// (EvalMode is a pure cache hit) and scoring greedy-step moves through
// the scalar tier on one shared engine. Run with -cpu 1,4,8 — ns/op
// should stay near-flat as goroutines are added, because warm lookups
// never take a lock and move scoring uses per-worker pooled state.
func BenchmarkEnginePlanLookupParallel(b *testing.B) {
	g, err := systems.NewDWT().Graph(16)
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(256, 1)
	if _, err := eng.Evaluate(g); err != nil {
		b.Fatal(err)
	}
	base := core.AssignmentOf(g)
	var moves []core.Move
	for _, id := range g.NoiseSources() {
		moves = append(moves, core.Move{Source: id, Frac: base[id] - 1})
	}
	want, err := eng.PowerMoves(g, base, moves)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("evalmode", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := eng.EvalMode(g); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("powermoves", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				ps, err := eng.PowerMoves(g, base, moves)
				if err != nil {
					b.Error(err)
					return
				}
				if ps[0] != want[0] {
					b.Errorf("concurrent move score %g, want %g", ps[0], want[0])
					return
				}
			}
		})
	})
}

// BenchmarkWLOptParallel is the service-shaped contention benchmark:
// concurrent full word-length searches (one graph per goroutine, the
// shape of concurrent jobs on different digests) sharing one plan-cached
// engine. Run with -cpu 1,4,8 — with the lock-free plan reads and pooled
// move-scoring state, per-op time should track the single-goroutine cost
// instead of serializing on the engine.
func BenchmarkWLOptParallel(b *testing.B) {
	maxFrac := 20
	if testing.Short() {
		maxFrac = 16
	}
	eng := core.NewEngine(256, 1)
	eng.SetPlanCacheCap(64) // one plan per concurrent goroutine, no churn
	opt := wlopt.Options{Budget: 1e-7, MinFrac: 4, MaxFrac: maxFrac, Workers: 1, Evaluator: eng}
	gRef, err := systems.NewDWT().Graph(maxFrac)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := wlopt.Optimize(gRef, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g, err := systems.NewDWT().Graph(maxFrac)
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			res, err := wlopt.Optimize(g, opt)
			if err != nil {
				b.Error(err)
				return
			}
			if res.Power != ref.Power || res.Cost != ref.Cost {
				b.Errorf("concurrent result (%g, %g) diverges from reference (%g, %g)",
					res.Power, res.Cost, ref.Power, ref.Cost)
				return
			}
		}
	})
}

// BenchmarkServiceSubmit measures the optimization service's warm-cache
// submit-to-result latency through the in-process layer (no HTTP): the
// first submission runs the search and populates the content-addressed
// result cache; every timed iteration then submits the identical request
// and waits for its (immediately done) job. This is the overhead a
// deduplicated request pays — job minting, cache lookup, event plumbing —
// and the number the daemon's P50 rides on under repeated traffic.
func BenchmarkServiceSubmit(b *testing.B) {
	m := service.New(service.Config{NPSD: 256, Workers: 2, JobHistory: 64})
	defer m.Close()
	req := service.Request{System: "dwt97(fig3)", Options: spec.Options{
		Strategy: "hybrid", BudgetWidth: 8, MinFrac: 4, MaxFrac: 12, Seed: 1,
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	warm, err := m.Submit(req)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Wait(ctx, warm.ID); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info, err := m.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if !info.CacheHit {
			b.Fatal("warm submission missed the cache")
		}
		fin, err := m.Wait(ctx, info.ID)
		if err != nil {
			b.Fatal(err)
		}
		if fin.State != service.JobDone {
			b.Fatalf("state %s", fin.State)
		}
	}
}

// BenchmarkEvaluateBatch measures raw oracle throughput: one greedy step's
// worth of candidate assignments scored through the engine at increasing
// pool widths.
func BenchmarkEvaluateBatch(b *testing.B) {
	g, err := systems.NewDWT().Graph(16)
	if err != nil {
		b.Fatal(err)
	}
	base := core.AssignmentOf(g)
	var batch []core.Assignment
	for id := range base {
		a := base.Clone()
		a[id]--
		batch = append(batch, a)
	}
	workersList := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workersList = append(workersList, n)
	}
	for _, workers := range workersList {
		eng := core.NewEngine(1024, workers)
		if _, err := eng.EvaluateBatch(g, batch); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.EvaluateBatch(g, batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColdStartWarmStore measures what the persistent warm store buys
// a restarted daemon. "inmem-warm" is the baseline: duplicate submissions
// against a live manager's LRU. "store-warm" restarts the whole service
// (fresh manager, fresh engine) every iteration over a pre-populated store
// directory — the duplicate submit must be served from disk with zero plan
// builds. "restored-plan-search" submits *new* options per iteration on a
// restarted manager, so a full search runs on a plan restored from disk:
// no graph propagation, no FFT response sampling, PlanBuilds stays zero.
func BenchmarkColdStartWarmStore(b *testing.B) {
	baseReq := service.Request{System: "dwt97(fig3)", Options: spec.Options{
		Strategy: "descent", BudgetWidth: 8, MinFrac: 4, MaxFrac: 12, Seed: 1,
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cfg := service.Config{NPSD: 256, Workers: 2, JobHistory: 64}

	submitDone := func(b *testing.B, m *service.Manager, req service.Request) *service.JobInfo {
		b.Helper()
		info, err := m.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		fin, err := m.Wait(ctx, info.ID)
		if err != nil {
			b.Fatal(err)
		}
		if fin.State != service.JobDone {
			b.Fatalf("state %s (%s)", fin.State, fin.Error)
		}
		return fin
	}
	openStore := func(b *testing.B, dir string) *store.Store {
		b.Helper()
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		return st
	}

	b.Run("inmem-warm", func(b *testing.B) {
		m := service.New(cfg)
		defer m.Close()
		submitDone(b, m, baseReq)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if fin := submitDone(b, m, baseReq); !fin.CacheHit {
				b.Fatal("warm submission missed the in-memory cache")
			}
		}
	})

	b.Run("store-warm", func(b *testing.B) {
		dir := b.TempDir()
		seedCfg := cfg
		seedCfg.Store = openStore(b, dir)
		seeder := service.New(seedCfg)
		submitDone(b, seeder, baseReq)
		seeder.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			restartCfg := cfg
			restartCfg.Store = openStore(b, dir)
			m := service.New(restartCfg)
			b.StartTimer()
			fin := submitDone(b, m, baseReq)
			b.StopTimer()
			if !fin.CacheHit {
				b.Fatal("restarted daemon missed the persistent store")
			}
			if st := m.Stats(); st.PlanBuilds != 0 {
				b.Fatalf("restarted daemon built %d plans", st.PlanBuilds)
			}
			m.Close()
			b.StartTimer()
		}
	})

	b.Run("restored-plan-search", func(b *testing.B) {
		dir := b.TempDir()
		seedCfg := cfg
		seedCfg.Store = openStore(b, dir)
		seeder := service.New(seedCfg)
		submitDone(b, seeder, baseReq)
		seeder.Close()
		seed := int64(1000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			restartCfg := cfg
			restartCfg.Store = openStore(b, dir)
			m := service.New(restartCfg)
			req := baseReq
			req.Options.Seed = seed // unseen options: forces a real search
			seed++
			b.StartTimer()
			fin := submitDone(b, m, req)
			b.StopTimer()
			if fin.CacheHit {
				b.Fatal("unseen options unexpectedly served from cache")
			}
			if st := m.Stats(); st.PlanBuilds != 0 || st.PlanRestores != 1 {
				b.Fatalf("plan builds/restores = %d/%d, want 0/1 (search must run on the restored plan)",
					st.PlanBuilds, st.PlanRestores)
			}
			m.Close()
			b.StartTimer()
		}
	})
}
