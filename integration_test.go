package repro

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/filter"
	"repro/internal/fxsim"
	"repro/internal/qnoise"
	"repro/internal/rangean"
	"repro/internal/sfg"
	"repro/internal/stats"
	"repro/internal/systems"
	"repro/internal/wlopt"
)

// TestEndToEndDesignFlow walks the complete fixed-point refinement flow the
// paper motivates: design a system, bound its dynamic range, size the
// integer bits, optimize the fractional bits against a noise budget with
// the fast PSD evaluator, and confirm the result by simulation.
func TestEndToEndDesignFlow(t *testing.T) {
	// 1. Design: a two-stage band-shaping chain.
	lp, err := filter.DesignFIR(filter.FIRSpec{Band: filter.Lowpass, Taps: 41, F1: 0.22, Window: dsp.Hamming})
	if err != nil {
		t.Fatal(err)
	}
	bp, err := filter.DesignIIR(filter.IIRSpec{Kind: filter.Butterworth, Band: filter.Bandpass, Order: 3, F1: 0.05, F2: 0.18})
	if err != nil {
		t.Fatal(err)
	}
	g := sfg.New()
	in := g.Input("in")
	f1 := g.Filter("lp", lp)
	f2 := g.Filter("bp", bp)
	out := g.Output("out")
	g.Chain(in, f1, f2, out)
	g.SetNoise(in, qnoise.Source{Mode: systems.Mode, Frac: 16})
	g.SetNoise(f1, qnoise.Source{Mode: systems.Mode, Frac: 16})
	g.SetNoise(f2, qnoise.Source{Mode: systems.Mode, Frac: 16})

	// 2. Range analysis -> integer bits for every signal.
	plan, err := rangean.Plan(g, rangean.PlanOptions{
		InputRanges:  map[sfg.NodeID]rangean.Interval{in: rangean.NewInterval(-1, 1)},
		TargetSQNRdB: 70,
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, wl := range plan {
		if wl.Int < 1 || wl.Int > 8 {
			t.Fatalf("node %d integer bits %d implausible", id, wl.Int)
		}
	}

	// 3. Fractional-bit optimization against a noise budget.
	const budget = 1e-8
	res, err := wlopt.Optimize(g, wlopt.Options{Budget: budget, MinFrac: 6, MaxFrac: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Power > budget {
		t.Fatalf("optimizer result %g over budget", res.Power)
	}

	// 4. Confirm by simulation: the analytical budget holds within the
	// paper's sub-one-bit margin.
	sim, err := fxsim.Run(g, fxsim.Config{Samples: 1 << 18, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ed := stats.Ed(sim.Power, res.Power)
	if !stats.SubOneBit(ed) {
		t.Fatalf("final Ed %s outside the sub-one-bit band", core.EdPercent(ed))
	}
	if sim.Power > 4*budget {
		t.Fatalf("simulated power %g far over budget %g", sim.Power, budget)
	}
}

// TestEndToEndAllSystemsAllEvaluators cross-checks every benchmark system
// against every applicable evaluator in one sweep — the repository's
// smoke-level contract.
func TestEndToEndAllSystemsAllEvaluators(t *testing.T) {
	ff, err := systems.NewFreqFilter()
	if err != nil {
		t.Fatal(err)
	}
	syss := []systems.System{ff, systems.NewDWT(), systems.NewDecimator(), systems.NewInterpolator()}
	const d = 12
	for _, sys := range syss {
		g, err := sys.Graph(d)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		sim, err := sys.Simulate(d, systems.SimConfig{Samples: 1 << 17, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		prop, err := core.NewPSDEvaluator(512).Evaluate(g)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		ed := stats.Ed(sim.Power, prop.Power)
		if math.Abs(ed) > 0.25 {
			t.Errorf("%s: proposed Ed %s too large", sys.Name(), core.EdPercent(ed))
		}
		if _, err := core.NewAgnosticEvaluator(512).Evaluate(g); err != nil {
			t.Errorf("%s: agnostic: %v", sys.Name(), err)
		}
		if !g.IsMultirate() {
			if _, err := core.NewFlatEvaluator().Evaluate(g); err != nil {
				t.Errorf("%s: flat: %v", sys.Name(), err)
			}
		}
	}
}

// TestEndToEndStreamingAtScale runs a paper-scale-adjacent streaming
// simulation (2^21 samples in 8k chunks) of the DWT system and checks it
// against the analytical estimate — exercising the constant-memory path the
// big experiments rely on.
func TestEndToEndStreamingAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming scale test")
	}
	sys := systems.NewDWT()
	const d = 14
	g, err := sys.Graph(d)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewPSDEvaluator(1024).Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := fxsim.RunStreaming(g, fxsim.Config{Samples: 1 << 21, Seed: 3}, 8192)
	if err != nil {
		t.Fatal(err)
	}
	ed := stats.Ed(sim.Power, est.Power)
	if math.Abs(ed) > 0.05 {
		t.Fatalf("streaming-scale Ed %s, want within 5%%", core.EdPercent(ed))
	}
}

// TestSpectrumRendering exercises the ASCII renderer on a real error
// spectrum end to end.
func TestSpectrumRendering(t *testing.T) {
	ff, err := systems.NewFreqFilter()
	if err != nil {
		t.Fatal(err)
	}
	g, err := ff.Graph(12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewPSDEvaluator(128).Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.PSD.RenderASCII(&sb, 16, 60)
	out := sb.String()
	if !strings.Contains(out, "PSD (peak") {
		t.Fatal("render missing header")
	}
	if strings.Count(out, "\n") < 10 {
		t.Fatalf("render too short:\n%s", out)
	}
}
